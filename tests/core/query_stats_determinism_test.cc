// QueryStats determinism contract: every counter-valued field must be a pure
// function of (seed, options, query) — never of num_threads. The engine
// guarantees this by deriving each candidate's RNG stream from
// (seed, source, candidate) and folding per-candidate counters in index
// order after parallel regions join; these tests pin that contract for both
// the static estimator and CrashSim-T.
#include <vector>

#include <gtest/gtest.h>

#include "core/crashsim.h"
#include "core/crashsim_t.h"
#include "core/query_context.h"
#include "core/query_stats.h"
#include "graph/generators.h"
#include "graph/temporal_generators.h"
#include "graph/temporal_graph.h"
#include "util/rng.h"

namespace crashsim {
namespace {

// The thread-count-independent slice of a QueryStats record (timing fields
// and deadline slack are wall-clock and excluded by design).
std::vector<int64_t> CounterFields(const QueryStats& qs) {
  std::vector<int64_t> out = {
      qs.trials_target,
      qs.trials_run,
      qs.trials_truncated ? 1 : 0,
      qs.tree_builds,
      qs.tree_entries,
      qs.tree_bytes,
      qs.tree_levels,
      qs.candidates_evaluated,
      qs.walks_sampled,
      qs.walk_steps,
      qs.tree_hits,
      qs.snapshots_processed,
      qs.stable_tree_snapshots,
      qs.source_tree_rebuilds,
      qs.source_tree_reuses,
      qs.delta_prune_checks,
      qs.delta_prune_hits,
      qs.difference_prune_checks,
      qs.difference_prune_hits,
      qs.difference_prefilter_skips,
      qs.difference_tree_rebuilds,
      qs.scores_computed,
  };
  for (const QueryStats::SnapshotStats& s : qs.snapshots) {
    out.push_back(s.snapshot);
    out.push_back(s.candidates);
    out.push_back(s.delta_pruned);
    out.push_back(s.difference_pruned);
    out.push_back(s.recomputed);
    out.push_back(s.tree_stable ? 1 : 0);
  }
  return out;
}

TEST(QueryStatsDeterminismTest, CrashSimCountersIndependentOfThreadCount) {
  Rng rng(9);
  const Graph g = ErdosRenyi(60, 240, false, &rng);

  QueryStats stats_by_threads[2];
  std::vector<double> scores_by_threads[2];
  const int thread_counts[2] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    CrashSimOptions opt;
    opt.mc.c = 0.6;
    opt.mc.trials_override = 400;
    opt.mc.seed = 77;
    opt.num_threads = thread_counts[i];
    CrashSim algo(opt);
    algo.Bind(&g);
    QueryContext ctx;
    ctx.set_stats(&stats_by_threads[i]);
    const PartialResult result = algo.SingleSource(5, &ctx);
    ASSERT_TRUE(result.complete()) << "threads=" << thread_counts[i];
    scores_by_threads[i] = result.scores;
  }
  EXPECT_EQ(CounterFields(stats_by_threads[0]),
            CounterFields(stats_by_threads[1]));
  EXPECT_EQ(stats_by_threads[0].epsilon_achieved,
            stats_by_threads[1].epsilon_achieved);
  // The scores themselves are bit-identical too — same contract.
  EXPECT_EQ(scores_by_threads[0], scores_by_threads[1]);
}

TEST(QueryStatsDeterminismTest, CrashSimTCountersIndependentOfThreadCount) {
  Rng rng(21);
  const Graph base = ErdosRenyi(40, 120, false, &rng);
  ChurnOptions churn;
  churn.num_snapshots = 5;
  churn.churn_rate = 0.01;
  const TemporalGraph tg = EvolveWithChurn(base, churn, &rng);

  TemporalQuery q;
  q.kind = TemporalQueryKind::kThreshold;
  q.source = 3;
  q.begin_snapshot = 0;
  q.end_snapshot = 4;
  q.theta = 0.01;

  QueryStats stats_by_threads[2];
  std::vector<NodeId> nodes_by_threads[2];
  const int thread_counts[2] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    CrashSimTOptions opt;
    opt.crashsim.mc.c = 0.6;
    opt.crashsim.mc.trials_override = 300;
    opt.crashsim.mc.seed = 77;
    opt.crashsim.num_threads = thread_counts[i];
    CrashSimT engine(opt);
    QueryContext ctx;
    ctx.set_stats(&stats_by_threads[i]);
    const TemporalAnswer answer = engine.Answer(tg, q, &ctx);
    ASSERT_TRUE(answer.complete()) << "threads=" << thread_counts[i];
    nodes_by_threads[i] = answer.nodes;
  }
  EXPECT_EQ(CounterFields(stats_by_threads[0]),
            CounterFields(stats_by_threads[1]));
  EXPECT_EQ(nodes_by_threads[0], nodes_by_threads[1]);
}

}  // namespace
}  // namespace crashsim
