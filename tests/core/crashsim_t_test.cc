#include "core/crashsim_t.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/temporal_generators.h"
#include "graph/temporal_graph.h"

namespace crashsim {
namespace {

// Two components: a static undirected star 0..5 (hub 0) that contains the
// query source, and a churning clique-ish component 6..9. Deltas never touch
// the star, so once the candidate set lives inside it, both pruning rules
// can retire every remaining candidate.
TemporalGraph SplitWorld(int snapshots) {
  TemporalGraphBuilder b(10, /*undirected=*/true);
  std::vector<Edge> star;
  for (NodeId v = 1; v <= 5; ++v) star.push_back({0, v});
  std::vector<Edge> base = star;
  base.push_back({6, 7});
  base.push_back({8, 9});
  b.AddSnapshot(base);
  for (int t = 1; t < snapshots; ++t) {
    std::vector<Edge> edges = star;
    // Rotate the far component's wiring every snapshot.
    const NodeId a = static_cast<NodeId>(6 + (t % 4));
    const NodeId c = static_cast<NodeId>(6 + ((t + 1) % 4));
    const NodeId d = static_cast<NodeId>(6 + ((t + 2) % 4));
    if (a != c) edges.push_back({a, c});
    if (c != d) edges.push_back({c, d});
    b.AddSnapshot(edges);
  }
  return b.Build();
}

CrashSimTOptions Options(int64_t trials, uint64_t seed = 42) {
  CrashSimTOptions opt;
  opt.crashsim.mc.c = 0.6;
  opt.crashsim.mc.trials_override = trials;
  opt.crashsim.mc.seed = seed;
  return opt;
}

TemporalQuery StarThresholdQuery(int end_snapshot) {
  TemporalQuery q;
  q.kind = TemporalQueryKind::kThreshold;
  q.source = 1;  // a leaf
  q.begin_snapshot = 0;
  q.end_snapshot = end_snapshot;
  // True leaf-leaf SimRank is 0.6; paper mode's recurrence understates it on
  // this degree-skewed star (~0.18, see DESIGN.md §3) but still clears 0.1
  // with a wide noise margin, while hub and far-component scores are ~0.
  q.theta = 0.1;
  return q;
}

TEST(CrashSimTTest, FindsCoLeavesUnderThreshold) {
  const TemporalGraph tg = SplitWorld(6);
  CrashSimT engine(Options(4000));
  const TemporalAnswer answer = engine.Answer(tg, StarThresholdQuery(5));
  // Leaves 2..5 share the hub with the source; hub and far component fail.
  EXPECT_EQ(answer.nodes, (std::vector<NodeId>{2, 3, 4, 5}));
  EXPECT_EQ(answer.stats.snapshots_processed, 6);
}

TEST(CrashSimTTest, PruningRetiresUnaffectedCandidates) {
  const TemporalGraph tg = SplitWorld(6);
  CrashSimT engine(Options(4000));
  const TemporalAnswer answer = engine.Answer(tg, StarThresholdQuery(5));
  // After snapshot 0 the candidate set is {2,3,4,5}; every later snapshot's
  // delta is confined to the far component, so all 4 are pruned each time.
  EXPECT_EQ(answer.stats.pruned_by_delta +
                answer.stats.pruned_by_difference,
            4 * 5);
  EXPECT_EQ(answer.stats.stable_tree_snapshots, 5);
  // Only snapshot 0 computed scores (9 candidates).
  EXPECT_EQ(answer.stats.scores_computed, 9);
}

TEST(CrashSimTTest, DisabledPruningRecomputesEverything) {
  const TemporalGraph tg = SplitWorld(6);
  CrashSimTOptions opt = Options(4000);
  opt.enable_delta_pruning = false;
  opt.enable_difference_pruning = false;
  CrashSimT engine(opt);
  const TemporalAnswer answer = engine.Answer(tg, StarThresholdQuery(5));
  EXPECT_EQ(answer.nodes, (std::vector<NodeId>{2, 3, 4, 5}));
  EXPECT_EQ(answer.stats.pruned_by_delta, 0);
  EXPECT_EQ(answer.stats.pruned_by_difference, 0);
  // 9 at snapshot 0, then 4 per remaining snapshot.
  EXPECT_EQ(answer.stats.scores_computed, 9 + 4 * 5);
}

TEST(CrashSimTTest, PruningMatchesUnprunedAnswerSet) {
  const TemporalGraph tg = SplitWorld(8);
  CrashSimT pruned(Options(4000, 11));
  CrashSimTOptions no_prune = Options(4000, 11);
  no_prune.enable_delta_pruning = false;
  no_prune.enable_difference_pruning = false;
  CrashSimT unpruned(no_prune);
  const TemporalQuery q = StarThresholdQuery(7);
  EXPECT_EQ(pruned.Answer(tg, q).nodes, unpruned.Answer(tg, q).nodes);
}

TEST(CrashSimTTest, PrefilterEquivalentToLiteralTreeComparison) {
  // The reachability pre-filter must make the exact same pruning decisions
  // as Algorithm 3's literal per-candidate tree comparison; with identical
  // decisions the RNG stream aligns and answers match bit-for-bit.
  Rng rng(5);
  const Graph base = ErdosRenyi(40, 120, false, &rng);
  ChurnOptions churn;
  churn.num_snapshots = 6;
  churn.churn_rate = 0.01;
  const TemporalGraph tg = EvolveWithChurn(base, churn, &rng);

  TemporalQuery q;
  q.kind = TemporalQueryKind::kThreshold;
  q.source = 3;
  q.begin_snapshot = 0;
  q.end_snapshot = 5;
  q.theta = 0.01;

  CrashSimTOptions with_prefilter = Options(500, 9);
  with_prefilter.difference_reachability_prefilter = true;
  CrashSimTOptions literal = Options(500, 9);
  literal.difference_reachability_prefilter = false;

  const TemporalAnswer a = CrashSimT(with_prefilter).Answer(tg, q);
  const TemporalAnswer b = CrashSimT(literal).Answer(tg, q);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.stats.pruned_by_delta, b.stats.pruned_by_delta);
  EXPECT_EQ(a.stats.pruned_by_difference, b.stats.pruned_by_difference);
  EXPECT_EQ(a.stats.scores_computed, b.stats.scores_computed);
}

TEST(CrashSimTTest, TreeReuseMatchesLiteralRebuildExactly) {
  // In the split world every delta is confined to the far component, where
  // the reachability stability test is exact, so the reuse path makes the
  // same decisions as Algorithm 3's rebuild-and-compare — same answers,
  // same pruning counts, bit-identical RNG consumption.
  const TemporalGraph tg = SplitWorld(8);
  const TemporalQuery q = StarThresholdQuery(7);
  CrashSimTOptions reuse = Options(2000, 13);
  reuse.reuse_source_tree = true;
  CrashSimTOptions literal = Options(2000, 13);
  literal.reuse_source_tree = false;
  const TemporalAnswer a = CrashSimT(reuse).Answer(tg, q);
  const TemporalAnswer b = CrashSimT(literal).Answer(tg, q);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.stats.pruned_by_delta, b.stats.pruned_by_delta);
  EXPECT_EQ(a.stats.scores_computed, b.stats.scores_computed);
  EXPECT_EQ(a.stats.stable_tree_snapshots, b.stats.stable_tree_snapshots);
}

TEST(CrashSimTTest, TreeReuseConservativeOnGlobalChurn) {
  // Under global churn the reachability test may flag more snapshots as
  // unstable than literal equality would — never fewer. Both paths must
  // still produce valid (subset-of-nodes) answers.
  Rng rng(15);
  const Graph base = ErdosRenyi(50, 150, false, &rng);
  ChurnOptions churn;
  churn.num_snapshots = 6;
  churn.churn_rate = 0.02;
  const TemporalGraph tg = EvolveWithChurn(base, churn, &rng);
  TemporalQuery q;
  q.kind = TemporalQueryKind::kThreshold;
  q.source = 4;
  q.begin_snapshot = 0;
  q.end_snapshot = 5;
  q.theta = 0.01;
  CrashSimTOptions reuse = Options(600, 3);
  CrashSimTOptions literal = Options(600, 3);
  literal.reuse_source_tree = false;
  const TemporalAnswer a = CrashSimT(reuse).Answer(tg, q);
  const TemporalAnswer b = CrashSimT(literal).Answer(tg, q);
  EXPECT_LE(a.stats.stable_tree_snapshots, b.stats.stable_tree_snapshots);
}

TEST(CrashSimTTest, TrendQueryReturnsSubsetOfNodes) {
  Rng rng(6);
  GrowthOptions growth;
  growth.num_snapshots = 8;
  const TemporalGraph tg = GrowTemporalGraph(60, true, growth, &rng);
  TemporalQuery q;
  q.kind = TemporalQueryKind::kTrendIncreasing;
  q.source = 0;
  q.begin_snapshot = 0;
  q.end_snapshot = 7;
  q.trend_tolerance = 0.02;
  CrashSimT engine(Options(800));
  const TemporalAnswer answer = engine.Answer(tg, q);
  EXPECT_LT(answer.nodes.size(), 60u);
  for (NodeId v : answer.nodes) {
    EXPECT_NE(v, q.source);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 60);
  }
}

TEST(CrashSimTTest, SingleSnapshotIntervalDegeneratesToCrashSim) {
  const TemporalGraph tg = SplitWorld(3);
  TemporalQuery q = StarThresholdQuery(0);
  CrashSimT engine(Options(4000));
  const TemporalAnswer answer = engine.Answer(tg, q);
  EXPECT_EQ(answer.stats.snapshots_processed, 1);
  EXPECT_EQ(answer.nodes, (std::vector<NodeId>{2, 3, 4, 5}));
}

TEST(CrashSimTTest, EmptyCandidateSetShortCircuits) {
  const TemporalGraph tg = SplitWorld(5);
  TemporalQuery q = StarThresholdQuery(4);
  q.theta = 0.99;  // nothing survives snapshot 0
  CrashSimT engine(Options(500));
  const TemporalAnswer answer = engine.Answer(tg, q);
  EXPECT_TRUE(answer.nodes.empty());
  EXPECT_EQ(answer.stats.snapshots_processed, 1);
}

}  // namespace
}  // namespace crashsim
