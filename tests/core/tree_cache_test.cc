#include "core/tree_cache.h"

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/crashsim.h"
#include "graph/generators.h"
#include "util/failpoint.h"
#include "util/memory_budget.h"
#include "util/rng.h"
#include "util/status.h"

namespace crashsim {
namespace {

using std::chrono::milliseconds;

CrashSimOptions TestEngineOptions() {
  CrashSimOptions opt;
  opt.mc.trials_override = 100;
  opt.mc.seed = 17;
  return opt;
}

TreeCacheOptions MatchingCacheOptions(const CrashSimOptions& engine) {
  TreeCacheOptions opt;
  opt.c = engine.mc.c;
  opt.prune_threshold = engine.tree_prune_threshold;
  return opt;
}

std::vector<NodeId> AllNodes(const Graph& g) {
  std::vector<NodeId> all(static_cast<size_t>(g.num_nodes()));
  std::iota(all.begin(), all.end(), 0);
  return all;
}

TEST(TreeCacheOptionsTest, ValidateRejectsBadValues) {
  TreeCacheOptions opt;
  opt.c = 0.0;
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
  opt = TreeCacheOptions{};
  opt.c = 1.0;
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
  opt = TreeCacheOptions{};
  opt.prune_threshold = -1e-3;
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
  opt = TreeCacheOptions{};
  opt.capacity_bytes = -1;
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(TreeCacheOptions{}.Validate().ok());
}

TEST(TreeCacheTest, CachedTreeEqualsDirectBuild) {
  Rng rng(5);
  const Graph g = ErdosRenyi(300, 1500, /*undirected=*/false, &rng);
  const CrashSimOptions eopt = TestEngineOptions();
  CrashSim engine(eopt);
  engine.Bind(&g);

  TreeCache cache(&g, MatchingCacheOptions(eopt));
  QueryContext ctx;
  StatusOr<TreeCache::TreePtr> cached =
      cache.GetOrBuild(7, engine.LMax(), eopt.mode, &ctx);
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();
  EXPECT_TRUE(**cached == engine.BuildTree(7));
}

TEST(TreeCacheTest, SecondLookupHitsAndDistinctKeysMiss) {
  Rng rng(5);
  const Graph g = ErdosRenyi(200, 900, /*undirected=*/false, &rng);
  const CrashSimOptions eopt = TestEngineOptions();
  CrashSim engine(eopt);
  engine.Bind(&g);
  TreeCache cache(&g, MatchingCacheOptions(eopt));

  QueryContext ctx;
  const int l_max = engine.LMax();
  ASSERT_TRUE(cache.GetOrBuild(3, l_max, eopt.mode, &ctx).ok());
  ASSERT_TRUE(cache.GetOrBuild(3, l_max, eopt.mode, &ctx).ok());
  ASSERT_TRUE(cache.GetOrBuild(4, l_max, eopt.mode, &ctx).ok());
  // Same source at a different l_max is a different tree: no false sharing.
  ASSERT_TRUE(cache.GetOrBuild(3, l_max - 1, eopt.mode, &ctx).ok());

  const TreeCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 3);
  EXPECT_EQ(stats.trees, 3);
  EXPECT_GT(stats.bytes, 0);
}

// The serving-path correctness claim: scoring against a cache-shared tree is
// bit-identical to the uncached SingleSource path, including when many
// threads share one engine and one cached tree concurrently (ctx-path
// scores are a pure function of (seed, source, candidate)).
TEST(TreeCacheTest, ConcurrentSharedTreeQueriesAreBitIdenticalToUncached) {
  Rng rng(9);
  const Graph g = ErdosRenyi(300, 1500, /*undirected=*/false, &rng);
  const CrashSimOptions eopt = TestEngineOptions();
  CrashSim engine(eopt);
  engine.Bind(&g);

  constexpr NodeId kSource = 11;
  QueryContext direct_ctx;
  const PartialResult expected = engine.SingleSource(kSource, &direct_ctx);
  ASSERT_TRUE(expected.status.ok());

  TreeCache cache(&g, MatchingCacheOptions(eopt));
  const std::vector<NodeId> all = AllNodes(g);
  constexpr int kThreads = 8;
  std::vector<PartialResult> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      QueryContext ctx;
      StatusOr<TreeCache::TreePtr> tree =
          cache.GetOrBuild(kSource, engine.LMax(), eopt.mode, &ctx);
      ASSERT_TRUE(tree.ok()) << tree.status().ToString();
      results[static_cast<size_t>(t)] =
          engine.PartialWithTree(**tree, all, &ctx);
    });
  }
  for (std::thread& t : threads) t.join();

  for (const PartialResult& r : results) {
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.trials_done, expected.trials_done);
    EXPECT_EQ(r.scores, expected.scores);
  }
  const TreeCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);  // one build total across all eight threads
  EXPECT_EQ(stats.hits + stats.coalesced, kThreads - 1);
}

// Single-flight observability: with the build slowed by the rev_reach.build
// latency failpoint, threads arriving during the in-flight build must
// coalesce onto it (cache.coalesced > 0) instead of re-entering the builder
// path — the metric the smoke lane asserts on.
TEST(TreeCacheTest, InFlightBuildCoalescesWaiters) {
  Rng rng(13);
  const Graph g = ErdosRenyi(200, 900, /*undirected=*/false, &rng);
  const CrashSimOptions eopt = TestEngineOptions();
  CrashSim engine(eopt);
  engine.Bind(&g);
  TreeCache cache(&g, MatchingCacheOptions(eopt));

  FailpointScope failpoints(/*seed=*/3);
  FailpointSpec spec;
  spec.action = FailpointAction::kLatency;
  spec.latency_ms = 100;
  spec.max_fires = 1;  // only the first build is slowed
  ASSERT_TRUE(ConfigureFailpoint("rev_reach.build", spec).ok());

  std::atomic<bool> builder_started{false};
  std::thread builder([&] {
    QueryContext ctx;
    builder_started.store(true);
    StatusOr<TreeCache::TreePtr> tree =
        cache.GetOrBuild(2, engine.LMax(), eopt.mode, &ctx);
    EXPECT_TRUE(tree.ok());
  });
  while (!builder_started.load()) std::this_thread::yield();
  // Give the builder time to claim the slot and enter the slowed build.
  std::this_thread::sleep_for(milliseconds(20));

  QueryContext ctx;
  StatusOr<TreeCache::TreePtr> tree =
      cache.GetOrBuild(2, engine.LMax(), eopt.mode, &ctx);
  builder.join();
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();

  const TreeCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.coalesced, 1);
  EXPECT_EQ(stats.trees, 1);
}

// A waiter's own deadline is honoured while it waits on someone else's
// build: it gives up with kDeadlineExceeded, the builder still completes.
TEST(TreeCacheTest, WaiterDeadlineExpiresDuringInFlightBuild) {
  Rng rng(13);
  const Graph g = ErdosRenyi(200, 900, /*undirected=*/false, &rng);
  const CrashSimOptions eopt = TestEngineOptions();
  CrashSim engine(eopt);
  engine.Bind(&g);
  TreeCache cache(&g, MatchingCacheOptions(eopt));

  FailpointScope failpoints(/*seed=*/3);
  FailpointSpec spec;
  spec.action = FailpointAction::kLatency;
  spec.latency_ms = 200;
  spec.max_fires = 1;
  ASSERT_TRUE(ConfigureFailpoint("rev_reach.build", spec).ok());

  std::atomic<bool> builder_started{false};
  std::thread builder([&] {
    QueryContext ctx;
    builder_started.store(true);
    EXPECT_TRUE(cache.GetOrBuild(2, engine.LMax(), eopt.mode, &ctx).ok());
  });
  while (!builder_started.load()) std::this_thread::yield();
  std::this_thread::sleep_for(milliseconds(20));

  QueryContext ctx(milliseconds(30));
  StatusOr<TreeCache::TreePtr> tree =
      cache.GetOrBuild(2, engine.LMax(), eopt.mode, &ctx);
  EXPECT_EQ(tree.status().code(), StatusCode::kDeadlineExceeded);
  builder.join();
  EXPECT_EQ(cache.stats().trees, 1);  // the build itself still landed
}

// A build shed by the builder's MemoryBudget surfaces kResourceExhausted and
// must NOT poison the slot: the next (budget-free) query builds normally.
TEST(TreeCacheTest, BudgetShedBuildIsNotCachedAndSlotRecovers) {
  Rng rng(21);
  const Graph g = ErdosRenyi(400, 3000, /*undirected=*/false, &rng);
  const CrashSimOptions eopt = TestEngineOptions();
  CrashSim engine(eopt);
  engine.Bind(&g);
  TreeCache cache(&g, MatchingCacheOptions(eopt));

  MemoryBudget tiny(64);  // far below any revReach scratch allocation
  QueryContext starved;
  starved.set_memory_budget(&tiny);
  StatusOr<TreeCache::TreePtr> shed =
      cache.GetOrBuild(1, engine.LMax(), eopt.mode, &starved);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(cache.stats().trees, 0);

  QueryContext healthy;
  StatusOr<TreeCache::TreePtr> ok =
      cache.GetOrBuild(1, engine.LMax(), eopt.mode, &healthy);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(**ok == engine.BuildTree(1));
  EXPECT_EQ(cache.stats().trees, 1);
}

// LRU eviction under byte pressure: capacity for roughly one tree means
// inserting a second evicts the first, resident bytes stay bounded, and an
// evicted tree already handed to a query remains valid (shared ownership).
TEST(TreeCacheTest, EvictsLeastRecentlyUsedUnderCapacityPressure) {
  Rng rng(31);
  const Graph g = ErdosRenyi(300, 1500, /*undirected=*/false, &rng);
  const CrashSimOptions eopt = TestEngineOptions();
  CrashSim engine(eopt);
  engine.Bind(&g);

  QueryContext ctx;
  TreeCacheOptions copt = MatchingCacheOptions(eopt);
  // Size the capacity from a real build: one tree fits, two do not.
  const ReverseReachableTree probe = engine.BuildTree(0);
  copt.capacity_bytes = probe.MemoryBytes() * 3 / 2;
  TreeCache cache(&g, copt);

  StatusOr<TreeCache::TreePtr> first =
      cache.GetOrBuild(0, engine.LMax(), eopt.mode, &ctx);
  ASSERT_TRUE(first.ok());
  StatusOr<TreeCache::TreePtr> second =
      cache.GetOrBuild(1, engine.LMax(), eopt.mode, &ctx);
  ASSERT_TRUE(second.ok());

  const TreeCache::Stats stats = cache.stats();
  EXPECT_GE(stats.evictions, 1);
  EXPECT_LE(stats.bytes, copt.capacity_bytes);
  // The evicted tree outlives its cache slot for the query still holding it.
  EXPECT_TRUE(**first == probe);

  // Re-querying the evicted key is a miss (it really is gone) ...
  const int64_t misses_before = cache.stats().misses;
  ASSERT_TRUE(cache.GetOrBuild(0, engine.LMax(), eopt.mode, &ctx).ok());
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
}

// Regression: an exception escaping the build — here a simulated allocation
// failure injected at the tree_cache.build failpoint — used to leave the
// in-flight slot behind with building == true and no builder. Every later
// query for that key then coalesced onto a build that no longer existed:
// deadline-free queries hung, deadline-bearing ones burned their whole
// budget and came back kDeadlineExceeded. The cache must convert the
// bad_alloc into kResourceExhausted, drop the slot, and let the next query
// rebuild the key normally.
TEST(TreeCacheTest, BadAllocDuringBuildDoesNotPoisonTheKey) {
  Rng rng(41);
  const Graph g = ErdosRenyi(200, 900, /*undirected=*/false, &rng);
  const CrashSimOptions eopt = TestEngineOptions();
  CrashSim engine(eopt);
  engine.Bind(&g);
  TreeCache cache(&g, MatchingCacheOptions(eopt));

  {
    FailpointScope failpoints(/*seed=*/7);
    FailpointSpec spec;
    spec.action = FailpointAction::kBadAlloc;
    spec.max_fires = 1;
    ASSERT_TRUE(ConfigureFailpoint("tree_cache.build", spec).ok());
    StatusOr<TreeCache::TreePtr> faulted =
        cache.GetOrBuild(3, engine.LMax(), eopt.mode, nullptr);
    ASSERT_FALSE(faulted.ok());
    EXPECT_EQ(faulted.status().code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(cache.stats().trees, 0);
  }

  // Pre-fix, this lookup found the leaked in-flight slot and waited for a
  // builder that did not exist until its deadline expired. The deadline
  // bounds the regression to a quick failure instead of a test hang.
  QueryContext ctx(milliseconds(2000));
  StatusOr<TreeCache::TreePtr> rebuilt =
      cache.GetOrBuild(3, engine.LMax(), eopt.mode, &ctx);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_TRUE(**rebuilt == engine.BuildTree(3));
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().trees, 1);
}

}  // namespace
}  // namespace crashsim
