#include <gtest/gtest.h>

#include "core/crashsim.h"
#include "graph/generators.h"
#include "simrank/power_method.h"

namespace crashsim {
namespace {

CrashSimOptions Options(int threads, int64_t trials = 2000,
                        uint64_t seed = 42) {
  CrashSimOptions opt;
  opt.mc.c = 0.6;
  opt.mc.trials_override = trials;
  opt.mc.seed = seed;
  opt.num_threads = threads;
  return opt;
}

TEST(CrashSimParallelTest, DeterministicAcrossRuns) {
  Rng rng(1);
  const Graph g = ErdosRenyi(120, 480, false, &rng);
  CrashSim a(Options(4));
  CrashSim b(Options(4));
  a.Bind(&g);
  b.Bind(&g);
  EXPECT_EQ(a.SingleSource(3), b.SingleSource(3));
}

TEST(CrashSimParallelTest, IndependentOfThreadCount) {
  // Per-candidate streams are derived from (seed, source, candidate), so
  // 2-thread and 8-thread runs must agree bit-for-bit.
  Rng rng(2);
  const Graph g = ErdosRenyi(100, 400, false, &rng);
  CrashSim two(Options(2));
  CrashSim eight(Options(8));
  two.Bind(&g);
  eight.Bind(&g);
  EXPECT_EQ(two.SingleSource(7), eight.SingleSource(7));
}

TEST(CrashSimParallelTest, ThreadCountSweepIsBitIdenticalBothPaths) {
  // num_threads is a worker cap, not part of the random stream: the legacy
  // parallel path and the ctx-aware path must both return bit-identical
  // scores across num_threads in {2, 8} (and the ctx path also at 1, whose
  // per-candidate streams make sequential == parallel).
  Rng rng(13);
  const Graph g = ErdosRenyi(110, 440, false, &rng);
  std::vector<std::vector<double>> legacy;
  std::vector<std::vector<double>> anytime;
  for (int threads : {1, 2, 8}) {
    CrashSim algo(Options(threads, 1500, 77));
    algo.Bind(&g);
    if (threads > 1) legacy.push_back(algo.SingleSource(4));
    const PartialResult r = algo.SingleSource(4, nullptr);
    ASSERT_TRUE(r.complete());
    anytime.push_back(r.scores);
  }
  ASSERT_EQ(legacy.size(), 2u);
  EXPECT_EQ(legacy[0], legacy[1]);
  EXPECT_EQ(anytime[0], anytime[1]);
  EXPECT_EQ(anytime[0], anytime[2]);
}

TEST(CrashSimParallelTest, MatchesSequentialStatistically) {
  const Graph g = PaperExampleGraph();
  const SimRankMatrix truth = PowerMethodAllPairs(g, 0.6, 55);
  CrashSimOptions opt = Options(4, 20000);
  opt.mode = RevReachMode::kCorrected;
  opt.diag_samples = 2000;
  CrashSim parallel(opt);
  parallel.Bind(&g);
  const auto scores = parallel.SingleSource(0);
  for (NodeId v = 1; v < 8; ++v) {
    EXPECT_NEAR(scores[static_cast<size_t>(v)], truth.At(0, v), 0.05)
        << "node " << static_cast<int>(v);
  }
}

TEST(CrashSimParallelTest, PartialSubsetAgreesWithFullRun) {
  // In parallel mode a candidate's stream does not depend on which other
  // candidates are in the batch, so Partial results embed into SingleSource
  // results exactly.
  Rng rng(3);
  const Graph g = ErdosRenyi(80, 320, false, &rng);
  CrashSim algo(Options(4));
  algo.Bind(&g);
  const auto all = algo.SingleSource(5);
  const std::vector<NodeId> cands{1, 9, 33, 60};
  CrashSim algo2(Options(4));
  algo2.Bind(&g);
  const auto partial = algo2.Partial(5, cands);
  for (size_t i = 0; i < cands.size(); ++i) {
    EXPECT_DOUBLE_EQ(partial[i], all[static_cast<size_t>(cands[i])]);
  }
}

TEST(CrashSimParallelTest, CorrectedModeCombinesWithThreads) {
  // Diagonal corrections plus parallel candidate evaluation: accuracy and
  // thread-count invariance must both survive the combination.
  Rng rng(9);
  const Graph g = ErdosRenyi(60, 240, false, &rng);
  const SimRankMatrix truth = PowerMethodAllPairs(g, 0.6, 55);
  CrashSimOptions opt = Options(12000);
  opt.mode = RevReachMode::kCorrected;
  opt.diag_samples = 1500;
  opt.num_threads = 4;
  CrashSim four(opt);
  opt.num_threads = 2;
  CrashSim two(opt);
  four.Bind(&g);
  two.Bind(&g);
  const auto a = four.SingleSource(8);
  EXPECT_EQ(a, two.SingleSource(8));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == 8) continue;
    EXPECT_NEAR(a[static_cast<size_t>(v)], truth.At(8, v), 0.06)
        << "node " << v;
  }
}

TEST(CrashSimParallelTest, SelfScoreStillOne) {
  Rng rng(4);
  const Graph g = ErdosRenyi(50, 200, false, &rng);
  CrashSim algo(Options(4, 200));
  algo.Bind(&g);
  EXPECT_DOUBLE_EQ(algo.SingleSource(11)[11], 1.0);
}

}  // namespace
}  // namespace crashsim
