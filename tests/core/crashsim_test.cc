#include "core/crashsim.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "simrank/power_method.h"
#include "simrank/walk.h"

namespace crashsim {
namespace {

CrashSimOptions FastOptions(int64_t trials, uint64_t seed = 42) {
  CrashSimOptions opt;
  opt.mc.c = 0.6;
  opt.mc.trials_override = trials;
  opt.mc.seed = seed;
  return opt;
}

TEST(CrashSimTest, SelfScoreIsOne) {
  const Graph g = PaperExampleGraph();
  CrashSim algo(FastOptions(100));
  algo.Bind(&g);
  EXPECT_DOUBLE_EQ(algo.SingleSource(0)[0], 1.0);
}

TEST(CrashSimTest, ScoresNonNegative) {
  const Graph g = PaperExampleGraph();
  CrashSim algo(FastOptions(1000));
  algo.Bind(&g);
  for (NodeId u = 0; u < 8; ++u) {
    for (double s : algo.SingleSource(u)) EXPECT_GE(s, 0.0);
  }
}

TEST(CrashSimTest, DeterministicGivenSeed) {
  const Graph g = PaperExampleGraph();
  CrashSim a(FastOptions(500, 3));
  CrashSim b(FastOptions(500, 3));
  a.Bind(&g);
  b.Bind(&g);
  EXPECT_EQ(a.SingleSource(1), b.SingleSource(1));
}

TEST(CrashSimTest, LMaxDefaultAndOverride) {
  CrashSimOptions opt;
  opt.mc.c = 0.6;
  CrashSim algo(opt);
  EXPECT_EQ(algo.LMax(), 35);  // paper value at c = 0.6
  opt.lmax_override = 10;
  CrashSim overridden(opt);
  EXPECT_EQ(overridden.LMax(), 10);
}

TEST(CrashSimTest, TrialsForHonoursOverrideCapAndFormula) {
  CrashSimOptions opt;
  opt.mc.trials_override = 77;
  EXPECT_EQ(CrashSim(opt).TrialsFor(500), 77);

  CrashSimOptions capped;
  capped.mc.trials_cap = 100;
  EXPECT_EQ(CrashSim(capped).TrialsFor(100000), 100);

  CrashSimOptions exact;
  exact.mc.trials_cap = 0;
  EXPECT_EQ(CrashSim(exact).TrialsFor(500),
            CrashSimTrialCount(exact.mc.c, exact.mc.epsilon, exact.mc.delta,
                               500));
}

TEST(CrashSimTest, PartialMatchesSingleSourceSubset) {
  // Partial evaluation consumes the RNG differently, so compare estimates
  // statistically: both must approximate the same truth.
  const Graph g = PaperExampleGraph();
  const SimRankMatrix truth = PowerMethodAllPairs(g, 0.6, 55);
  CrashSim algo(FastOptions(20000));
  algo.Bind(&g);
  const std::vector<NodeId> cands{2, 4, 6};
  const auto partial = algo.Partial(0, cands);
  ASSERT_EQ(partial.size(), 3u);
  for (size_t i = 0; i < cands.size(); ++i) {
    EXPECT_NEAR(partial[i], truth.At(0, cands[i]), 0.05);
  }
}

TEST(CrashSimTest, PartialWithSourceInCandidates) {
  const Graph g = PaperExampleGraph();
  CrashSim algo(FastOptions(100));
  algo.Bind(&g);
  const std::vector<NodeId> cands{0, 3};
  const auto partial = algo.Partial(0, cands);
  EXPECT_DOUBLE_EQ(partial[0], 1.0);
}

TEST(CrashSimTest, PartialEmptyCandidates) {
  const Graph g = PaperExampleGraph();
  CrashSim algo(FastOptions(100));
  algo.Bind(&g);
  EXPECT_TRUE(algo.Partial(0, {}).empty());
}

TEST(CrashSimTest, PartialWithTreeMatchesPartial) {
  const Graph g = PaperExampleGraph();
  CrashSim a(FastOptions(400, 5));
  CrashSim b(FastOptions(400, 5));
  a.Bind(&g);
  b.Bind(&g);
  const std::vector<NodeId> cands{1, 2, 3};
  const auto tree = b.BuildTree(0);
  EXPECT_EQ(a.Partial(0, cands), b.PartialWithTree(tree, cands));
}

TEST(CrashSimTest, PaperModeApproximatesGroundTruthOnExample) {
  // The published recurrence carries a modest systematic bias (DESIGN.md §3)
  // but must land near the truth on the paper's own example graph.
  const Graph g = PaperExampleGraph();
  const SimRankMatrix truth = PowerMethodAllPairs(g, 0.6, 55);
  CrashSim algo(FastOptions(20000));
  algo.Bind(&g);
  const auto scores = algo.SingleSource(0);
  for (NodeId v = 1; v < 8; ++v) {
    EXPECT_NEAR(scores[static_cast<size_t>(v)], truth.At(0, v), 0.12)
        << "node " << static_cast<int>(v);
  }
}

TEST(CrashSimTest, CorrectedModeApproximatesGroundTruthTightly) {
  const Graph g = PaperExampleGraph();
  const SimRankMatrix truth = PowerMethodAllPairs(g, 0.6, 55);
  CrashSimOptions opt = FastOptions(20000);
  opt.mode = RevReachMode::kCorrected;
  opt.diag_samples = 3000;
  CrashSim algo(opt);
  algo.Bind(&g);
  for (NodeId u : {0, 4}) {
    const auto scores = algo.SingleSource(u);
    for (NodeId v = 0; v < 8; ++v) {
      if (v == u) continue;
      EXPECT_NEAR(scores[static_cast<size_t>(v)], truth.At(u, v), 0.05)
          << u << "->" << v;
    }
  }
}

TEST(CrashSimTest, CorrectedModeOnRandomGraph) {
  Rng rng(31);
  const Graph g = ErdosRenyi(50, 200, false, &rng);
  const SimRankMatrix truth = PowerMethodAllPairs(g, 0.6, 55);
  CrashSimOptions opt = FastOptions(12000);
  opt.mode = RevReachMode::kCorrected;
  opt.diag_samples = 2000;
  CrashSim algo(opt);
  algo.Bind(&g);
  const auto scores = algo.SingleSource(9);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == 9) continue;
    EXPECT_NEAR(scores[static_cast<size_t>(v)], truth.At(9, v), 0.06)
        << "node " << v;
  }
}

TEST(CrashSimTest, DeepestTreeLevelContributesToScores) {
  // Depth off-by-one regression: the tree stores levels 0..l_max, and a
  // candidate walk of l_max + 1 nodes (l_max steps) is needed for level
  // l_max to ever be scored. Two disjoint chains of length l_max meeting at
  // a common tail node z make level l_max the *only* possible meeting
  // level, so a non-zero score proves the deepest level contributes (the
  // pre-fix walks, capped at l_max nodes, scored exactly 0 here).
  const int l_max = 5;
  const NodeId u = 0, v = 5, z = 10;
  const Graph g = BuildGraph(11, {{1, 0},
                                  {2, 1},
                                  {3, 2},
                                  {4, 3},
                                  {10, 4},   // source chain: 0<-1<-2<-3<-4<-z
                                  {6, 5},
                                  {7, 6},
                                  {8, 7},
                                  {9, 8},
                                  {10, 9}});  // candidate chain: 5<-...<-z
  CrashSimOptions opt;
  opt.mc.c = 0.25;
  opt.mc.trials_override = 5000;
  opt.mc.seed = 12;
  opt.lmax_override = l_max;
  CrashSim algo(opt);
  algo.Bind(&g);
  const auto tree = algo.BuildTree(u);
  ASSERT_EQ(tree.max_level(), l_max);
  ASSERT_GT(tree.Probability(l_max, z), 0.0);      // z sits at the deepest level
  for (int level = 0; level < l_max; ++level) {    // ... and nowhere shallower
    for (NodeId w : {NodeId{6}, NodeId{7}, NodeId{8}, NodeId{9}, z}) {
      ASSERT_EQ(tree.Probability(level, w), 0.0);
    }
  }
  const auto scores = algo.Partial(u, std::vector<NodeId>{v});
  EXPECT_GT(scores[0], 0.0);
  // The ctx-aware path shares the fix.
  const PartialResult anytime = algo.Partial(u, std::vector<NodeId>{v}, nullptr);
  ASSERT_TRUE(anytime.complete());
  EXPECT_GT(anytime.scores[0], 0.0);
}

TEST(CrashSimTest, SourceWithEmptyTreeGivesZeros) {
  const Graph g = BuildGraph(3, {{0, 1}, {0, 2}});
  CrashSim algo(FastOptions(200));
  algo.Bind(&g);
  const auto scores = algo.SingleSource(0);
  EXPECT_DOUBLE_EQ(scores[1], 0.0);
  EXPECT_DOUBLE_EQ(scores[2], 0.0);
}

TEST(CrashSimTest, StarLeavesScoreNearCInCorrectedMode) {
  // Star leaves have exact SimRank c. This is exactly the degree-skew
  // configuration where the published recurrence's |I(v)| denominator is
  // furthest from the true walk marginal (DESIGN.md §3), so corrected mode
  // must nail it while paper mode visibly undershoots.
  const Graph g = StarGraph(8, /*undirected=*/true);
  CrashSimOptions opt = FastOptions(20000);
  opt.mode = RevReachMode::kCorrected;
  opt.diag_samples = 2000;
  CrashSim corrected(opt);
  corrected.Bind(&g);
  const auto scores = corrected.SingleSource(1);
  for (NodeId v = 2; v < 8; ++v) {
    EXPECT_NEAR(scores[static_cast<size_t>(v)], 0.6, 0.03)
        << "leaf " << static_cast<int>(v);
  }

  CrashSim paper(FastOptions(20000));
  paper.Bind(&g);
  const auto paper_scores = paper.SingleSource(1);
  EXPECT_LT(paper_scores[2], 0.4) << "paper-mode bias disappeared?";
}

}  // namespace
}  // namespace crashsim
