#include "core/temporal_query.h"

#include <gtest/gtest.h>

namespace crashsim {
namespace {

TemporalQuery ThresholdQuery(double theta) {
  TemporalQuery q;
  q.kind = TemporalQueryKind::kThreshold;
  q.source = 0;
  q.theta = theta;
  return q;
}

TemporalQuery TrendQuery(TemporalQueryKind kind, double tol = 0.0) {
  TemporalQuery q;
  q.kind = kind;
  q.source = 0;
  q.trend_tolerance = tol;
  return q;
}

TEST(TemporalStepTest, ThresholdIsStrict) {
  const TemporalQuery q = ThresholdQuery(0.5);
  EXPECT_TRUE(TemporalStepSatisfied(q, true, 0.0, 0.6));
  EXPECT_FALSE(TemporalStepSatisfied(q, true, 0.0, 0.5));  // > not >=
  EXPECT_FALSE(TemporalStepSatisfied(q, false, 0.9, 0.4));
}

TEST(TemporalStepTest, TrendIncreasingFirstAlwaysPasses) {
  const TemporalQuery q = TrendQuery(TemporalQueryKind::kTrendIncreasing);
  EXPECT_TRUE(TemporalStepSatisfied(q, true, 0.0, 0.0));
  EXPECT_TRUE(TemporalStepSatisfied(q, true, 0.9, 0.1));
}

TEST(TemporalStepTest, TrendIncreasingNonStrict) {
  const TemporalQuery q = TrendQuery(TemporalQueryKind::kTrendIncreasing);
  EXPECT_TRUE(TemporalStepSatisfied(q, false, 0.3, 0.3));
  EXPECT_TRUE(TemporalStepSatisfied(q, false, 0.3, 0.4));
  EXPECT_FALSE(TemporalStepSatisfied(q, false, 0.3, 0.29));
}

TEST(TemporalStepTest, TrendToleranceAbsorbsNoise) {
  const TemporalQuery q =
      TrendQuery(TemporalQueryKind::kTrendIncreasing, 0.05);
  EXPECT_TRUE(TemporalStepSatisfied(q, false, 0.3, 0.26));
  EXPECT_FALSE(TemporalStepSatisfied(q, false, 0.3, 0.24));
}

TEST(TemporalStepTest, TrendDecreasingMirrorsIncreasing) {
  const TemporalQuery q = TrendQuery(TemporalQueryKind::kTrendDecreasing);
  EXPECT_TRUE(TemporalStepSatisfied(q, false, 0.3, 0.3));
  EXPECT_TRUE(TemporalStepSatisfied(q, false, 0.3, 0.2));
  EXPECT_FALSE(TemporalStepSatisfied(q, false, 0.3, 0.31));
}

TEST(TemporalQueryKindTest, Names) {
  EXPECT_STREQ(ToString(TemporalQueryKind::kThreshold), "threshold");
  EXPECT_STREQ(ToString(TemporalQueryKind::kTrendIncreasing),
               "trend-increasing");
  EXPECT_STREQ(ToString(TemporalQueryKind::kTrendDecreasing),
               "trend-decreasing");
}

TEST(CandidateFilterTest, StartsWithAllButSource) {
  TemporalQuery q = ThresholdQuery(0.5);
  q.source = 2;
  CandidateFilter filter(q, 5);
  EXPECT_EQ(filter.candidates(), (std::vector<NodeId>{0, 1, 3, 4}));
}

TEST(CandidateFilterTest, ThresholdDropsBelow) {
  CandidateFilter filter(ThresholdQuery(0.5), 4);  // candidates 1,2,3
  const size_t dropped = filter.Observe({0.6, 0.4, 0.9});
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(filter.candidates(), (std::vector<NodeId>{1, 3}));
  EXPECT_DOUBLE_EQ(filter.previous_score(1), 0.6);
  EXPECT_DOUBLE_EQ(filter.previous_score(3), 0.9);
}

TEST(CandidateFilterTest, TrendTracksPreviousScores) {
  CandidateFilter filter(
      TrendQuery(TemporalQueryKind::kTrendIncreasing), 4);
  filter.Observe({0.2, 0.5, 0.1});   // first: all pass
  EXPECT_EQ(filter.size(), 3u);
  filter.Observe({0.3, 0.4, 0.1});   // node 2 decreased -> dropped
  EXPECT_EQ(filter.candidates(), (std::vector<NodeId>{1, 3}));
  filter.Observe({0.3, 0.05});       // node 3 decreased -> dropped
  EXPECT_EQ(filter.candidates(), (std::vector<NodeId>{1}));
}

TEST(CandidateFilterTest, CandidatesOnlyShrink) {
  CandidateFilter filter(ThresholdQuery(0.5), 6);
  size_t prev = filter.size();
  const std::vector<std::vector<double>> rounds{
      {0.9, 0.9, 0.2, 0.9, 0.9},
      {0.9, 0.1, 0.9, 0.9},
      {0.9, 0.9, 0.1},
  };
  for (const auto& r : rounds) {
    filter.Observe(r);
    EXPECT_LE(filter.size(), prev);
    prev = filter.size();
  }
  EXPECT_EQ(filter.size(), 2u);
}

TEST(CandidateFilterTest, EmptyAfterTotalWipe) {
  CandidateFilter filter(ThresholdQuery(0.99), 3);
  filter.Observe({0.5, 0.5});
  EXPECT_TRUE(filter.candidates().empty());
  filter.Observe({});
  EXPECT_TRUE(filter.candidates().empty());
}

}  // namespace
}  // namespace crashsim
