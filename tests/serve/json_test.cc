#include "serve/json.h"

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "util/status.h"

namespace crashsim {
namespace {

StatusOr<JsonValue> Roundtrip(const std::string& text) {
  ASSIGN_OR_RETURN(JsonValue parsed, ParseJson(text));
  return ParseJson(parsed.Write());
}

TEST(JsonTest, ParsesScalars) {
  StatusOr<JsonValue> v = ParseJson("null");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
  v = ParseJson("true");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->as_bool());
  v = ParseJson("-12.5e2");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->as_number(), -1250.0);
  v = ParseJson("\"hi\\nthere\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), "hi\nthere");
}

TEST(JsonTest, ObjectPreservesInsertionOrderAndReplacesOnSet) {
  JsonValue obj = JsonValue::Object();
  obj.Set("b", JsonValue(int64_t{1}));
  obj.Set("a", JsonValue(int64_t{2}));
  obj.Set("b", JsonValue(int64_t{3}));
  EXPECT_EQ(obj.Write(), "{\"b\":3,\"a\":2}");
  EXPECT_EQ(obj.GetInt("b", -1), 3);
  EXPECT_EQ(obj.GetInt("missing", -1), -1);
}

TEST(JsonTest, TypedGettersFallBackOnWrongType) {
  StatusOr<JsonValue> v = ParseJson("{\"k\":\"ten\",\"theta\":0.25}");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->GetInt("k", 10), 10);
  EXPECT_DOUBLE_EQ(v->GetDouble("theta", 0.0), 0.25);
  EXPECT_EQ(v->GetString("k", ""), "ten");
}

TEST(JsonTest, DoublesRoundTripExactly) {
  const double value = 0.058241660574981729;
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue(value));
  StatusOr<JsonValue> back = ParseJson(arr.Write());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->items().size(), 1u);
  EXPECT_EQ(back->items()[0].as_number(), value);  // bit-exact
}

TEST(JsonTest, NonFiniteNumbersSerialiseAsNull) {
  JsonValue v(std::numeric_limits<double>::infinity());
  EXPECT_EQ(v.Write(), "null");
  EXPECT_EQ(JsonValue(std::nan("")).Write(), "null");
}

TEST(JsonTest, UnicodeEscapesDecodeIncludingSurrogatePairs) {
  StatusOr<JsonValue> v = ParseJson("\"\\u00e9\\uD83D\\uDE00\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), "\xC3\xA9\xF0\x9F\x98\x80");
  EXPECT_EQ(ParseJson("\"\\uD83D\"").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_EQ(ParseJson("").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseJson("{\"a\":1,}").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseJson("[1,2] trailing").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseJson("{\"a\"}").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseJson("01abc").status().code(), StatusCode::kInvalidArgument);
  // Parse errors carry a byte offset for debugging.
  const Status s = ParseJson("[1, nope]").status();
  EXPECT_NE(s.message().find("byte"), std::string::npos);
}

TEST(JsonTest, DepthLimitStopsHostileNesting) {
  std::string deep(100, '[');
  deep.append(100, ']');
  EXPECT_EQ(ParseJson(deep).status().code(), StatusCode::kInvalidArgument);
  // A document within the limit still parses.
  std::string ok(10, '[');
  ok.append(10, ']');
  EXPECT_TRUE(ParseJson(ok).ok());
}

TEST(JsonTest, NestedDocumentRoundTrips) {
  const std::string doc =
      "{\"op\":\"topk\",\"source\":1007,\"k\":10,"
      "\"nested\":{\"xs\":[1,2.5,\"s\",null,true]}}";
  StatusOr<JsonValue> twice = Roundtrip(doc);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(twice->Write(), doc);
}

}  // namespace
}  // namespace crashsim
