#include "serve/debugz.h"

#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "serve/json.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace crashsim {
namespace {

// A connected local socket pair; [0] is the test's end, [1] the "peer".
class SocketPair {
 public:
  SocketPair() { EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0); }
  ~SocketPair() {
    CloseOurs();
    ClosePeer();
  }
  int ours() const { return fds_[0]; }
  int peer() const { return fds_[1]; }
  void CloseOurs() {
    if (fds_[0] >= 0) close(fds_[0]);
    fds_[0] = -1;
  }
  void ClosePeer() {
    if (fds_[1] >= 0) close(fds_[1]);
    fds_[1] = -1;
  }

 private:
  int fds_[2] = {-1, -1};
};

void SendAll(int fd, const std::string& data) {
  ASSERT_EQ(send(fd, data.data(), data.size(), 0),
            static_cast<ssize_t>(data.size()));
}

TEST(ReadHttpRequestHeadTest, ReadsThroughTerminator) {
  SocketPair pair;
  SendAll(pair.peer(), "GET /statusz HTTP/1.1\r\nHost: x\r\n\r\n");
  StatusOr<std::string> head = ReadHttpRequestHead(pair.ours());
  ASSERT_TRUE(head.ok()) << head.status().ToString();
  EXPECT_EQ(*head, "GET /statusz HTTP/1.1\r\nHost: x\r\n\r\n");
}

TEST(ReadHttpRequestHeadTest, ToleratesArbitrarilySplitWrites) {
  SocketPair pair;
  const std::string request = "GET /tracez HTTP/1.1\r\nHost: x\r\n\r\n";
  std::thread writer([&pair, &request] {
    for (size_t i = 0; i < request.size(); i += 3) {
      const std::string piece = request.substr(i, 3);
      send(pair.peer(), piece.data(), piece.size(), 0);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  StatusOr<std::string> head = ReadHttpRequestHead(pair.ours());
  writer.join();
  ASSERT_TRUE(head.ok()) << head.status().ToString();
  EXPECT_EQ(*head, request);
}

TEST(ReadHttpRequestHeadTest, EofBeforeTerminatorIsUnavailable) {
  SocketPair pair;
  SendAll(pair.peer(), "GET /statusz HTT");
  pair.ClosePeer();
  const StatusOr<std::string> head = ReadHttpRequestHead(pair.ours());
  EXPECT_EQ(head.status().code(), StatusCode::kUnavailable);
}

TEST(ReadHttpRequestHeadTest, TimesOutOnSilentPeer) {
  SocketPair pair;
  SendAll(pair.peer(), "GET /sta");  // never finishes the head
  const StatusOr<std::string> head =
      ReadHttpRequestHead(pair.ours(), /*timeout_ms=*/100);
  EXPECT_EQ(head.status().code(), StatusCode::kUnavailable);
}

TEST(ReadHttpRequestHeadTest, RejectsOversizedHead) {
  SocketPair pair;
  const std::string huge =
      "GET /" + std::string(10000, 'a') + " HTTP/1.1\r\n\r\n";
  std::thread writer([&pair, &huge] {
    send(pair.peer(), huge.data(), huge.size(), 0);
  });
  const StatusOr<std::string> head = ReadHttpRequestHead(pair.ours());
  writer.join();
  EXPECT_EQ(head.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseHttpRequestLineTest, SplitsMethodAndPath) {
  const HttpRequestLine line =
      ParseHttpRequestLine("GET /statusz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(line.method, "GET");
  EXPECT_EQ(line.path, "/statusz");
}

TEST(ParseHttpRequestLineTest, StripsQueryString) {
  const HttpRequestLine line =
      ParseHttpRequestLine("GET /tracez?limit=5 HTTP/1.1\r\n\r\n");
  EXPECT_EQ(line.method, "GET");
  EXPECT_EQ(line.path, "/tracez");
}

TEST(ParseHttpRequestLineTest, MalformedLineYieldsEmptyFields) {
  EXPECT_TRUE(ParseHttpRequestLine("").method.empty());
  EXPECT_TRUE(ParseHttpRequestLine("GARBAGE\r\n\r\n").path.empty());
}

TEST(SendHttpResponseTest, WritesStatusHeadersAndBody) {
  SocketPair pair;
  SendHttpResponse(pair.ours(), "HTTP/1.1 200 OK", "application/json",
                   "{\"ok\": true}");
  pair.CloseOurs();
  std::string got;
  char buf[4096];
  for (;;) {
    const ssize_t n = recv(pair.peer(), buf, sizeof(buf), 0);
    if (n <= 0) break;
    got.append(buf, static_cast<size_t>(n));
  }
  EXPECT_EQ(got.find("HTTP/1.1 200 OK\r\n"), 0u);
  EXPECT_NE(got.find("Content-Type: application/json"), std::string::npos);
  EXPECT_NE(got.find("Content-Length: 12"), std::string::npos);
  EXPECT_NE(got.find("\r\n\r\n{\"ok\": true}"), std::string::npos);
}

TEST(BuildSpanTreeJsonTest, RebuildsNestingFromBracketedEvents) {
  RequestTrace trace(17);
  {
    const TraceRequestScope scope(&trace);
    TRACE_SPAN("serve.request");
    {
      TRACE_SPAN("executor.query");
      {
        TRACE_SPAN("engine.walk");
      }
    }
  }
  const JsonValue doc = BuildSpanTreeJson(trace);
  EXPECT_EQ(doc.GetInt("request_id", -1), 17);
  EXPECT_EQ(doc.GetInt("dropped", -1), 0);
  const JsonValue* threads = doc.Find("threads");
  ASSERT_NE(threads, nullptr);
  ASSERT_EQ(threads->items().size(), 1u);
  const JsonValue* spans = threads->items()[0].Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->items().size(), 1u);
  const JsonValue& root = spans->items()[0];
  EXPECT_EQ(root.GetString("name", ""), "serve.request");
  const JsonValue* children = root.Find("children");
  ASSERT_NE(children, nullptr);
  ASSERT_EQ(children->items().size(), 1u);
  const JsonValue& mid = children->items()[0];
  EXPECT_EQ(mid.GetString("name", ""), "executor.query");
  const JsonValue* grandchildren = mid.Find("children");
  ASSERT_NE(grandchildren, nullptr);
  ASSERT_EQ(grandchildren->items().size(), 1u);
  EXPECT_EQ(grandchildren->items()[0].GetString("name", ""), "engine.walk");
  // Parent spans cover their children.
  EXPECT_GE(root.GetDouble("dur_us", -1.0), mid.GetDouble("dur_us", -1.0));
}

TEST(BuildSpanTreeJsonTest, ParallelShardsAppearOnTheirOwnThreads) {
  RequestTrace trace(18);
  {
    const TraceRequestScope scope(&trace);
    TRACE_SPAN("serve.request");
    ParallelFor(
        64, [](int64_t, int64_t) {}, /*min_chunk=*/1, /*max_threads=*/4);
  }
  const JsonValue doc = BuildSpanTreeJson(trace);
  const JsonValue* threads = doc.Find("threads");
  ASSERT_NE(threads, nullptr);
  // The submitting thread plus at least one pool worker recorded events.
  EXPECT_GE(threads->items().size(), 2u);
  int shard_spans = 0;
  for (const JsonValue& thread : threads->items()) {
    const JsonValue* spans = thread.Find("spans");
    ASSERT_NE(spans, nullptr);
    for (const JsonValue& span : spans->items()) {
      if (span.GetString("name", "") == "parallel_for.shard") ++shard_spans;
    }
  }
  EXPECT_GE(shard_spans, 1);
}

TEST(BuildSpanTreeJsonTest, OpenSpansAreClosedAtLastTimestamp) {
  // Simulate a trace that quiesced with a span still open (snapshot
  // semantics): the builder must still emit a structurally complete tree.
  RequestTrace trace(19);
  trace.Append("serve.request", TraceEvent::Phase::kBegin, 0);
  trace.Append("engine.walk", TraceEvent::Phase::kBegin, 0);
  trace.Append("engine.walk", TraceEvent::Phase::kEnd, 0);
  // "serve.request" never ends.
  const JsonValue doc = BuildSpanTreeJson(trace);
  const JsonValue* threads = doc.Find("threads");
  ASSERT_NE(threads, nullptr);
  ASSERT_EQ(threads->items().size(), 1u);
  const JsonValue* spans = threads->items()[0].Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->items().size(), 1u);
  EXPECT_EQ(spans->items()[0].GetString("name", ""), "serve.request");
  EXPECT_GE(spans->items()[0].GetDouble("dur_us", -1.0), 0.0);
}

TracezRing::Entry MakeEntry(uint64_t id) {
  TracezRing::Entry entry;
  entry.request_id = id;
  entry.op = "topk";
  entry.status = "OK";
  entry.elapsed_ms = static_cast<double>(id);
  entry.span_tree = JsonValue::Object();
  return entry;
}

TEST(TracezRingTest, KeepsNewestEntriesNewestFirst) {
  TracezRing ring(3);
  EXPECT_TRUE(ring.Snapshot().empty());
  for (uint64_t id = 1; id <= 5; ++id) ring.Add(MakeEntry(id));
  const std::vector<TracezRing::Entry> snapshot = ring.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].request_id, 5u);
  EXPECT_EQ(snapshot[1].request_id, 4u);
  EXPECT_EQ(snapshot[2].request_id, 3u);
}

TEST(TracezRingTest, PartialFillSnapshotsOnlyAddedEntries) {
  TracezRing ring(8);
  ring.Add(MakeEntry(1));
  ring.Add(MakeEntry(2));
  const std::vector<TracezRing::Entry> snapshot = ring.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].request_id, 2u);
  EXPECT_EQ(snapshot[1].request_id, 1u);
}

}  // namespace
}  // namespace crashsim
