#include "serve/server.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/crashsim.h"
#include "graph/generators.h"
#include "graph/temporal_graph.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "util/event_log.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "util/top_k.h"

namespace crashsim {
namespace {

using std::chrono::milliseconds;

// An owned client connection to a test server.
class Client {
 public:
  explicit Client(int port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~Client() {
    if (fd_ >= 0) close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return connected_; }

  // One request/response round trip; returns the parsed response object.
  StatusOr<JsonValue> Call(const JsonValue& request) {
    RETURN_IF_ERROR(WriteFrame(fd_, request.Write()));
    ASSIGN_OR_RETURN(std::string payload, ReadFrame(fd_));
    return ParseJson(payload);
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

// 300-node graph with original ids offset by 1000, so tests exercise the
// original<->internal id mapping rather than an identity one.
LoadedGraph TestGraph() {
  Rng rng(11);
  LoadedGraph loaded;
  loaded.graph = ErdosRenyi(300, 1500, /*undirected=*/false, &rng);
  loaded.original_ids.resize(static_cast<size_t>(loaded.graph.num_nodes()));
  std::iota(loaded.original_ids.begin(), loaded.original_ids.end(),
            int64_t{1000});
  return loaded;
}

LoadedTemporalGraph TestTemporalGraph() {
  Rng rng(13);
  TemporalGraphBuilder builder(40, /*undirected=*/true);
  for (int t = 0; t < 4; ++t) {
    const Graph g = ErdosRenyi(40, 120 + 10 * t, /*undirected=*/true, &rng);
    builder.AddSnapshot(g.Edges());
  }
  LoadedTemporalGraph loaded;
  loaded.graph = builder.Build();
  loaded.original_ids.resize(static_cast<size_t>(loaded.graph.num_nodes()));
  std::iota(loaded.original_ids.begin(), loaded.original_ids.end(),
            int64_t{500});
  return loaded;
}

ServerOptions TestServerOptions() {
  ServerOptions opt;
  opt.engine.mc.trials_override = 150;
  opt.engine.mc.seed = 23;
  // Deterministic responses: no degradation shrinking trial budgets.
  opt.executor.degrade_at = 0.0;
  opt.executor.max_concurrent = 8;
  opt.executor.max_queue = 32;
  opt.metrics_port = 0;
  return opt;
}

JsonValue TopKRequest(int64_t source, int64_t k) {
  JsonValue request = JsonValue::Object();
  request.Set("op", JsonValue(std::string("topk")));
  request.Set("source", JsonValue(source));
  request.Set("k", JsonValue(k));
  return request;
}

// One raw HTTP exchange with the metrics listener; returns the whole
// response (status line, headers, body). split=true dribbles the request a
// few bytes at a time to exercise partial-read tolerance.
std::string RawHttp(int port, const std::string& payload, bool split = false) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return "";
  }
  if (split) {
    for (size_t i = 0; i < payload.size(); i += 7) {
      const std::string piece = payload.substr(i, 7);
      send(fd, piece.data(), piece.size(), 0);
      std::this_thread::sleep_for(milliseconds(5));
    }
  } else {
    send(fd, payload.data(), payload.size(), 0);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

std::string HttpGet(int port, const std::string& path, bool split = false) {
  return RawHttp(port, "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n", split);
}

// The body after the header terminator (empty when none).
std::string HttpBody(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(ServerOptionsTest, ValidateRejectsBadValues) {
  ServerOptions opt = TestServerOptions();
  opt.port = 70000;
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
  opt = TestServerOptions();
  opt.max_connections = 0;
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
  opt = TestServerOptions();
  opt.max_k = 0;
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
  opt = TestServerOptions();
  opt.executor.max_concurrent = 0;
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
  opt = TestServerOptions();
  opt.slow_query_ms = -2;  // -1 (disabled) is the lowest legal value
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
  opt = TestServerOptions();
  opt.tracez_capacity = -1;
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
  opt = TestServerOptions();
  opt.slo_ms = 0;
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(TestServerOptions().Validate().ok());
}

TEST(ServerTest, StartPingShutdown) {
  Server server(TestGraph(), std::nullopt, TestServerOptions());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  Client client(server.port());
  ASSERT_TRUE(client.connected());
  JsonValue request = JsonValue::Object();
  request.Set("op", JsonValue(std::string("ping")));
  request.Set("id", JsonValue(int64_t{42}));
  StatusOr<JsonValue> response = client.Call(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->GetString("status", ""), "OK");
  EXPECT_EQ(response->GetInt("id", -1), 42);

  server.Shutdown();
  server.Shutdown();  // idempotent
}

TEST(ServerTest, TopKIsBitIdenticalToDirectEngine) {
  LoadedGraph loaded = TestGraph();
  const ServerOptions options = TestServerOptions();

  // Direct, uncached reference on an identically configured engine.
  CrashSim reference(options.engine);
  reference.Bind(&loaded.graph);
  QueryContext ctx;
  const NodeId source = 7;  // original id 1007
  const PartialResult direct = reference.SingleSource(source, &ctx);
  ASSERT_TRUE(direct.status.ok());
  TopK<NodeId> selector(10);
  for (NodeId v = 0; v < loaded.graph.num_nodes(); ++v) {
    if (v != source) selector.Offer(direct.scores[static_cast<size_t>(v)], v);
  }
  const auto expected = selector.Sorted();

  Server server(TestGraph(), std::nullopt, options);
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());
  ASSERT_TRUE(client.connected());
  StatusOr<JsonValue> response = client.Call(TopKRequest(1007, 10));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->GetString("status", ""), "OK");

  const JsonValue* nodes = response->Find("nodes");
  const JsonValue* scores = response->Find("scores");
  ASSERT_NE(nodes, nullptr);
  ASSERT_NE(scores, nullptr);
  ASSERT_EQ(nodes->items().size(), expected.size());
  ASSERT_EQ(scores->items().size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(nodes->items()[i].as_int(),
              loaded.original_ids[static_cast<size_t>(expected[i].second)]);
    // %.17g serialisation round-trips doubles exactly: bit-identical.
    EXPECT_EQ(scores->items()[i].as_number(), expected[i].first);
  }
  EXPECT_EQ(response->GetInt("trials_done", -1), direct.trials_done);
  server.Shutdown();
}

TEST(ServerTest, UnknownSourceAndBadRequestsReportCleanErrors) {
  Server server(TestGraph(), std::nullopt, TestServerOptions());
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  StatusOr<JsonValue> response = client.Call(TopKRequest(99999, 5));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->GetString("status", ""), "NOT_FOUND");

  response = client.Call(TopKRequest(1003, 0));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->GetString("status", ""), "INVALID_ARGUMENT");

  JsonValue bad_op = JsonValue::Object();
  bad_op.Set("op", JsonValue(std::string("frobnicate")));
  response = client.Call(bad_op);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->GetString("status", ""), "INVALID_ARGUMENT");

  // Temporal endpoint without a temporal graph loaded.
  JsonValue temporal = JsonValue::Object();
  temporal.Set("op", JsonValue(std::string("temporal")));
  temporal.Set("source", JsonValue(int64_t{1003}));
  response = client.Call(temporal);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->GetString("status", ""), "INVALID_ARGUMENT");

  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.requests, 4);
  EXPECT_EQ(stats.errors, 4);
  server.Shutdown();
}

TEST(ServerTest, MalformedFrameGetsErrorResponse) {
  Server server(TestGraph(), std::nullopt, TestServerOptions());
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  // A valid frame whose payload is a JSON string, not an object.
  StatusOr<JsonValue> response = client.Call(JsonValue(std::string("{nope")));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->GetString("status", ""), "INVALID_ARGUMENT");
  server.Shutdown();
}

TEST(ServerTest, TemporalQueryRoundTrip) {
  LoadedTemporalGraph temporal = TestTemporalGraph();
  ServerOptions options = TestServerOptions();
  options.engine.mc.trials_override = 80;

  // Static graph is required; serve the first snapshot's projection.
  LoadedGraph loaded;
  loaded.graph = temporal.graph.Snapshot(0);
  loaded.original_ids = temporal.original_ids;

  Server server(std::move(loaded), TestTemporalGraph(), options);
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  JsonValue request = JsonValue::Object();
  request.Set("op", JsonValue(std::string("temporal")));
  request.Set("source", JsonValue(int64_t{503}));
  request.Set("kind", JsonValue(std::string("threshold")));
  request.Set("theta", JsonValue(0.02));
  StatusOr<JsonValue> response = client.Call(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->GetString("status", ""), "OK");
  EXPECT_EQ(response->GetInt("snapshots_processed", -1), 4);
  EXPECT_EQ(response->GetInt("begin", -1), 0);
  EXPECT_EQ(response->GetInt("end", -1), 3);
  const JsonValue* nodes = response->Find("nodes");
  ASSERT_NE(nodes, nullptr);
  // Every answered node must be an original id of the temporal graph.
  for (const JsonValue& node : nodes->items()) {
    const int64_t id = node.as_int();
    EXPECT_GE(id, 500);
    EXPECT_LT(id, 540);
  }
  server.Shutdown();
}

TEST(ServerTest, ConcurrentHotSourceClientsShareOneTree) {
  Server server(TestGraph(), std::nullopt, TestServerOptions());
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  std::vector<std::string> replies(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client client(server.port());
      if (!client.connected()) return;
      StatusOr<JsonValue> response = client.Call(TopKRequest(1007, 10));
      if (!response.ok()) return;
      // Keep only the semantic payload: timing fields legitimately differ
      // between clients; the answer must not.
      JsonValue semantic = JsonValue::Object();
      for (const char* key : {"status", "nodes", "scores", "trials_done",
                              "epsilon_achieved", "degraded"}) {
        if (const JsonValue* v = response->Find(key); v != nullptr) {
          semantic.Set(key, *v);
        }
      }
      replies[static_cast<size_t>(i)] = semantic.Write();
    });
  }
  for (std::thread& t : threads) t.join();

  // All clients answered, identically (scores are a pure function of
  // (seed, source, candidate), shared tree or not).
  for (int i = 0; i < kClients; ++i) {
    ASSERT_FALSE(replies[static_cast<size_t>(i)].empty()) << "client " << i;
    EXPECT_EQ(replies[static_cast<size_t>(i)], replies[0]);
  }
  // One build; everyone else hit the cache or coalesced onto the build.
  const TreeCache::Stats cache = server.tree_cache().stats();
  EXPECT_EQ(cache.misses, 1);
  EXPECT_EQ(cache.hits + cache.coalesced, kClients - 1);
  server.Shutdown();
}

TEST(ServerTest, GracefulShutdownDrainsInFlightQuery) {
  FailpointScope failpoints(3);
  // Make the query slow enough that shutdown starts while it is running.
  FailpointSpec slow;
  slow.action = FailpointAction::kLatency;
  slow.probability = 1.0;
  slow.latency_ms = 300;
  ASSERT_TRUE(ConfigureFailpoint("rev_reach.build", slow).ok());

  Server server(TestGraph(), std::nullopt, TestServerOptions());
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  std::thread shutdown_thread([&server] {
    std::this_thread::sleep_for(milliseconds(100));
    server.Shutdown();
  });
  // Sent before shutdown begins, answered in full after it: the drain
  // guarantee.
  StatusOr<JsonValue> response = client.Call(TopKRequest(1007, 5));
  shutdown_thread.join();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->GetString("status", ""), "OK");
  ASSERT_NE(response->Find("scores"), nullptr);
  EXPECT_EQ(response->Find("scores")->items().size(), 5u);
}

TEST(ServerTest, MetricsEndpointServesPrometheusText) {
  Server server(TestGraph(), std::nullopt, TestServerOptions());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.metrics_port(), 0);

  // Prime at least one serve.* metric.
  {
    Client client(server.port());
    ASSERT_TRUE(client.connected());
    JsonValue ping = JsonValue::Object();
    ping.Set("op", JsonValue(std::string("ping")));
    ASSERT_TRUE(client.Call(ping).ok());
  }

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.metrics_port()));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string get = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(send(fd, get.data(), get.size(), 0),
            static_cast<ssize_t>(get.size()));
  std::string body;
  char buf[4096];
  for (;;) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    body.append(buf, static_cast<size_t>(n));
  }
  close(fd);

  EXPECT_NE(body.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(body.find("crashsim_serve_requests_total"), std::string::npos);
  EXPECT_NE(body.find("# TYPE"), std::string::npos);
  server.Shutdown();
}

TEST(ServerTest, ResponsesCarryRequestIdAndStageBreakdown) {
  Server server(TestGraph(), std::nullopt, TestServerOptions());
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  StatusOr<JsonValue> first = client.Call(TopKRequest(1007, 5));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(first->GetString("status", ""), "OK");
  const int64_t first_id = first->GetInt("request_id", 0);
  EXPECT_GT(first_id, 0);
  const JsonValue* stages = first->Find("stages");
  ASSERT_NE(stages, nullptr);
  for (const char* key : {"queue_ms", "cache_ms", "walk_ms", "serialize_ms"}) {
    EXPECT_GE(stages->GetDouble(key, -1.0), 0.0) << key;
  }

  // Ids are assigned at ingress and strictly increase; error responses get
  // one too, so every reply is correlatable with the event log.
  StatusOr<JsonValue> second = client.Call(TopKRequest(99999, 5));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->GetString("status", ""), "NOT_FOUND");
  EXPECT_GT(second->GetInt("request_id", 0), first_id);
  server.Shutdown();
}

TEST(ServerTest, StatuszReportsLedgerCacheAndRollingLatency) {
  ServerOptions options = TestServerOptions();
  options.tracez_sample_every = 1;
  Server server(TestGraph(), std::nullopt, options);
  ASSERT_TRUE(server.Start().ok());
  {
    Client client(server.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.Call(TopKRequest(1007, 5)).ok());
    ASSERT_TRUE(client.Call(TopKRequest(1007, 5)).ok());
  }

  const std::string response = HttpGet(server.metrics_port(), "/statusz");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  StatusOr<JsonValue> doc = ParseJson(HttpBody(response));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->GetString("schema", ""), "crashsim.statusz.v1");
  EXPECT_GE(doc->GetDouble("uptime_seconds", -1.0), 0.0);
  const JsonValue* graph = doc->Find("graph");
  ASSERT_NE(graph, nullptr);
  EXPECT_EQ(graph->GetInt("nodes", 0), 300);
  const JsonValue* executor = doc->Find("executor");
  ASSERT_NE(executor, nullptr);
  EXPECT_EQ(executor->GetInt("submitted", -1), 2);
  EXPECT_EQ(executor->GetInt("completed", -1), 2);
  const JsonValue* cache = doc->Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->GetInt("misses", -1), 1);
  EXPECT_EQ(cache->GetInt("hits", -1), 1);
  const JsonValue* latency = doc->Find("latency");
  ASSERT_NE(latency, nullptr);
  const JsonValue* topk_window = latency->Find("topk");
  ASSERT_NE(topk_window, nullptr);
  EXPECT_EQ(topk_window->GetInt("count", -1), 2);
  EXPECT_GE(topk_window->GetDouble("p99_ms", -1.0),
            topk_window->GetDouble("p50_ms", -1.0));
  const JsonValue* slo = doc->Find("slo");
  ASSERT_NE(slo, nullptr);
  EXPECT_EQ(slo->GetInt("window_total", -1), 2);
  server.Shutdown();
}

TEST(ServerTest, TracezReassemblesIngressToEngineSpanTree) {
  ServerOptions options = TestServerOptions();
  options.tracez_sample_every = 1;  // sample every request
  Server server(TestGraph(), std::nullopt, options);
  ASSERT_TRUE(server.Start().ok());
  int64_t request_id = 0;
  {
    Client client(server.port());
    ASSERT_TRUE(client.connected());
    StatusOr<JsonValue> response = client.Call(TopKRequest(1007, 5));
    ASSERT_TRUE(response.ok());
    request_id = response->GetInt("request_id", 0);
    ASSERT_GT(request_id, 0);
  }

  StatusOr<JsonValue> doc =
      ParseJson(HttpBody(HttpGet(server.metrics_port(), "/tracez")));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->GetString("schema", ""), "crashsim.tracez.v1");
  EXPECT_EQ(doc->GetInt("capacity", -1), 64);
  const JsonValue* traces = doc->Find("traces");
  ASSERT_NE(traces, nullptr);
  ASSERT_FALSE(traces->items().empty());

  // Find the sampled entry for our request and walk its span tree: the
  // ingress span must contain the executor span — the request id crossed
  // the server -> executor -> engine boundary intact.
  bool found = false;
  for (const JsonValue& entry : traces->items()) {
    if (entry.GetInt("request_id", -1) != request_id) continue;
    found = true;
    EXPECT_EQ(entry.GetString("op", ""), "topk");
    EXPECT_EQ(entry.GetString("status", ""), "OK");
    const JsonValue* tree = entry.Find("trace");
    ASSERT_NE(tree, nullptr);
    EXPECT_EQ(tree->GetInt("request_id", -1), request_id);
    std::vector<std::string> names;
    const JsonValue* threads = tree->Find("threads");
    ASSERT_NE(threads, nullptr);
    std::function<void(const JsonValue&)> walk =
        [&](const JsonValue& span) {
          names.push_back(span.GetString("name", ""));
          if (const JsonValue* children = span.Find("children");
              children != nullptr) {
            for (const JsonValue& child : children->items()) walk(child);
          }
        };
    for (const JsonValue& thread : threads->items()) {
      const JsonValue* spans = thread.Find("spans");
      ASSERT_NE(spans, nullptr);
      for (const JsonValue& span : spans->items()) walk(span);
    }
    EXPECT_NE(std::find(names.begin(), names.end(), "serve.request"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "executor.query"),
              names.end());
  }
  EXPECT_TRUE(found) << "request " << request_id << " not sampled";
  server.Shutdown();
}

TEST(ServerTest, HttpListenerHandles404And405AndSplitWrites) {
  Server server(TestGraph(), std::nullopt, TestServerOptions());
  ASSERT_TRUE(server.Start().ok());
  const int port = server.metrics_port();

  EXPECT_NE(HttpGet(port, "/nope").find("HTTP/1.1 404"), std::string::npos);
  EXPECT_NE(RawHttp(port, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                .find("HTTP/1.1 405"),
            std::string::npos);
  // A request line dribbled 7 bytes at a time must still be served.
  const std::string split = HttpGet(port, "/statusz", /*split=*/true);
  EXPECT_NE(split.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(HttpBody(split).find("crashsim.statusz.v1"), std::string::npos);
  server.Shutdown();
}

TEST(ServerTest, SlowQueryEventsLandInTheEventLog) {
  const std::string path = testing::TempDir() + "/server_slow_query.jsonl";
  std::remove(path.c_str());
  EventLog::Options log_options;
  log_options.path = path;
  EventLog event_log(log_options);
  ASSERT_TRUE(event_log.ok());

  ServerOptions options = TestServerOptions();
  options.event_log = &event_log;
  options.slow_query_ms = 0;  // everything is "slow": log every request
  Server server(TestGraph(), std::nullopt, options);
  ASSERT_TRUE(server.Start().ok());
  int64_t ok_id = 0;
  int64_t error_id = 0;
  {
    Client client(server.port());
    ASSERT_TRUE(client.connected());
    StatusOr<JsonValue> ok_response = client.Call(TopKRequest(1007, 5));
    ASSERT_TRUE(ok_response.ok());
    ok_id = ok_response->GetInt("request_id", 0);
    StatusOr<JsonValue> error_response = client.Call(TopKRequest(99999, 5));
    ASSERT_TRUE(error_response.ok());
    error_id = error_response->GetInt("request_id", 0);
  }
  server.Shutdown();
  event_log.Flush();

  // Both requests produced a slow_query line carrying their request id, the
  // op, the status, and the per-stage breakdown.
  std::ifstream in(path);
  std::string line;
  bool saw_ok = false;
  bool saw_error = false;
  while (std::getline(in, line)) {
    StatusOr<JsonValue> event = ParseJson(line);
    ASSERT_TRUE(event.ok()) << line;
    if (event->GetString("event", "") != "slow_query") continue;
    EXPECT_EQ(event->GetString("schema", ""), "crashsim.event.v1");
    for (const char* key :
         {"queue_ms", "cache_ms", "walk_ms", "serialize_ms"}) {
      EXPECT_GE(event->GetDouble(key, -1.0), 0.0) << key;
    }
    const int64_t id = event->GetInt("request_id", 0);
    if (id == ok_id) {
      saw_ok = true;
      EXPECT_EQ(event->GetString("status", ""), "OK");
      EXPECT_EQ(event->GetString("op", ""), "topk");
    } else if (id == error_id) {
      saw_error = true;
      EXPECT_EQ(event->GetString("status", ""), "NOT_FOUND");
    }
  }
  EXPECT_TRUE(saw_ok);
  EXPECT_TRUE(saw_error);
}

}  // namespace
}  // namespace crashsim
