#include "serve/server.h"

#include <cstring>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "core/crashsim.h"
#include "graph/generators.h"
#include "graph/temporal_graph.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "util/top_k.h"

namespace crashsim {
namespace {

using std::chrono::milliseconds;

// An owned client connection to a test server.
class Client {
 public:
  explicit Client(int port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~Client() {
    if (fd_ >= 0) close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return connected_; }

  // One request/response round trip; returns the parsed response object.
  StatusOr<JsonValue> Call(const JsonValue& request) {
    RETURN_IF_ERROR(WriteFrame(fd_, request.Write()));
    ASSIGN_OR_RETURN(std::string payload, ReadFrame(fd_));
    return ParseJson(payload);
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

// 300-node graph with original ids offset by 1000, so tests exercise the
// original<->internal id mapping rather than an identity one.
LoadedGraph TestGraph() {
  Rng rng(11);
  LoadedGraph loaded;
  loaded.graph = ErdosRenyi(300, 1500, /*undirected=*/false, &rng);
  loaded.original_ids.resize(static_cast<size_t>(loaded.graph.num_nodes()));
  std::iota(loaded.original_ids.begin(), loaded.original_ids.end(),
            int64_t{1000});
  return loaded;
}

LoadedTemporalGraph TestTemporalGraph() {
  Rng rng(13);
  TemporalGraphBuilder builder(40, /*undirected=*/true);
  for (int t = 0; t < 4; ++t) {
    const Graph g = ErdosRenyi(40, 120 + 10 * t, /*undirected=*/true, &rng);
    builder.AddSnapshot(g.Edges());
  }
  LoadedTemporalGraph loaded;
  loaded.graph = builder.Build();
  loaded.original_ids.resize(static_cast<size_t>(loaded.graph.num_nodes()));
  std::iota(loaded.original_ids.begin(), loaded.original_ids.end(),
            int64_t{500});
  return loaded;
}

ServerOptions TestServerOptions() {
  ServerOptions opt;
  opt.engine.mc.trials_override = 150;
  opt.engine.mc.seed = 23;
  // Deterministic responses: no degradation shrinking trial budgets.
  opt.executor.degrade_at = 0.0;
  opt.executor.max_concurrent = 8;
  opt.executor.max_queue = 32;
  opt.metrics_port = 0;
  return opt;
}

JsonValue TopKRequest(int64_t source, int64_t k) {
  JsonValue request = JsonValue::Object();
  request.Set("op", JsonValue(std::string("topk")));
  request.Set("source", JsonValue(source));
  request.Set("k", JsonValue(k));
  return request;
}

TEST(ServerOptionsTest, ValidateRejectsBadValues) {
  ServerOptions opt = TestServerOptions();
  opt.port = 70000;
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
  opt = TestServerOptions();
  opt.max_connections = 0;
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
  opt = TestServerOptions();
  opt.max_k = 0;
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
  opt = TestServerOptions();
  opt.executor.max_concurrent = 0;
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(TestServerOptions().Validate().ok());
}

TEST(ServerTest, StartPingShutdown) {
  Server server(TestGraph(), std::nullopt, TestServerOptions());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  Client client(server.port());
  ASSERT_TRUE(client.connected());
  JsonValue request = JsonValue::Object();
  request.Set("op", JsonValue(std::string("ping")));
  request.Set("id", JsonValue(int64_t{42}));
  StatusOr<JsonValue> response = client.Call(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->GetString("status", ""), "OK");
  EXPECT_EQ(response->GetInt("id", -1), 42);

  server.Shutdown();
  server.Shutdown();  // idempotent
}

TEST(ServerTest, TopKIsBitIdenticalToDirectEngine) {
  LoadedGraph loaded = TestGraph();
  const ServerOptions options = TestServerOptions();

  // Direct, uncached reference on an identically configured engine.
  CrashSim reference(options.engine);
  reference.Bind(&loaded.graph);
  QueryContext ctx;
  const NodeId source = 7;  // original id 1007
  const PartialResult direct = reference.SingleSource(source, &ctx);
  ASSERT_TRUE(direct.status.ok());
  TopK<NodeId> selector(10);
  for (NodeId v = 0; v < loaded.graph.num_nodes(); ++v) {
    if (v != source) selector.Offer(direct.scores[static_cast<size_t>(v)], v);
  }
  const auto expected = selector.Sorted();

  Server server(TestGraph(), std::nullopt, options);
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());
  ASSERT_TRUE(client.connected());
  StatusOr<JsonValue> response = client.Call(TopKRequest(1007, 10));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->GetString("status", ""), "OK");

  const JsonValue* nodes = response->Find("nodes");
  const JsonValue* scores = response->Find("scores");
  ASSERT_NE(nodes, nullptr);
  ASSERT_NE(scores, nullptr);
  ASSERT_EQ(nodes->items().size(), expected.size());
  ASSERT_EQ(scores->items().size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(nodes->items()[i].as_int(),
              loaded.original_ids[static_cast<size_t>(expected[i].second)]);
    // %.17g serialisation round-trips doubles exactly: bit-identical.
    EXPECT_EQ(scores->items()[i].as_number(), expected[i].first);
  }
  EXPECT_EQ(response->GetInt("trials_done", -1), direct.trials_done);
  server.Shutdown();
}

TEST(ServerTest, UnknownSourceAndBadRequestsReportCleanErrors) {
  Server server(TestGraph(), std::nullopt, TestServerOptions());
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  StatusOr<JsonValue> response = client.Call(TopKRequest(99999, 5));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->GetString("status", ""), "NOT_FOUND");

  response = client.Call(TopKRequest(1003, 0));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->GetString("status", ""), "INVALID_ARGUMENT");

  JsonValue bad_op = JsonValue::Object();
  bad_op.Set("op", JsonValue(std::string("frobnicate")));
  response = client.Call(bad_op);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->GetString("status", ""), "INVALID_ARGUMENT");

  // Temporal endpoint without a temporal graph loaded.
  JsonValue temporal = JsonValue::Object();
  temporal.Set("op", JsonValue(std::string("temporal")));
  temporal.Set("source", JsonValue(int64_t{1003}));
  response = client.Call(temporal);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->GetString("status", ""), "INVALID_ARGUMENT");

  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.requests, 4);
  EXPECT_EQ(stats.errors, 4);
  server.Shutdown();
}

TEST(ServerTest, MalformedFrameGetsErrorResponse) {
  Server server(TestGraph(), std::nullopt, TestServerOptions());
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  // A valid frame whose payload is a JSON string, not an object.
  StatusOr<JsonValue> response = client.Call(JsonValue(std::string("{nope")));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->GetString("status", ""), "INVALID_ARGUMENT");
  server.Shutdown();
}

TEST(ServerTest, TemporalQueryRoundTrip) {
  LoadedTemporalGraph temporal = TestTemporalGraph();
  ServerOptions options = TestServerOptions();
  options.engine.mc.trials_override = 80;

  // Static graph is required; serve the first snapshot's projection.
  LoadedGraph loaded;
  loaded.graph = temporal.graph.Snapshot(0);
  loaded.original_ids = temporal.original_ids;

  Server server(std::move(loaded), TestTemporalGraph(), options);
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  JsonValue request = JsonValue::Object();
  request.Set("op", JsonValue(std::string("temporal")));
  request.Set("source", JsonValue(int64_t{503}));
  request.Set("kind", JsonValue(std::string("threshold")));
  request.Set("theta", JsonValue(0.02));
  StatusOr<JsonValue> response = client.Call(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->GetString("status", ""), "OK");
  EXPECT_EQ(response->GetInt("snapshots_processed", -1), 4);
  EXPECT_EQ(response->GetInt("begin", -1), 0);
  EXPECT_EQ(response->GetInt("end", -1), 3);
  const JsonValue* nodes = response->Find("nodes");
  ASSERT_NE(nodes, nullptr);
  // Every answered node must be an original id of the temporal graph.
  for (const JsonValue& node : nodes->items()) {
    const int64_t id = node.as_int();
    EXPECT_GE(id, 500);
    EXPECT_LT(id, 540);
  }
  server.Shutdown();
}

TEST(ServerTest, ConcurrentHotSourceClientsShareOneTree) {
  Server server(TestGraph(), std::nullopt, TestServerOptions());
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  std::vector<std::string> replies(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client client(server.port());
      if (!client.connected()) return;
      StatusOr<JsonValue> response = client.Call(TopKRequest(1007, 10));
      if (!response.ok()) return;
      // Keep only the semantic payload: timing fields legitimately differ
      // between clients; the answer must not.
      JsonValue semantic = JsonValue::Object();
      for (const char* key : {"status", "nodes", "scores", "trials_done",
                              "epsilon_achieved", "degraded"}) {
        if (const JsonValue* v = response->Find(key); v != nullptr) {
          semantic.Set(key, *v);
        }
      }
      replies[static_cast<size_t>(i)] = semantic.Write();
    });
  }
  for (std::thread& t : threads) t.join();

  // All clients answered, identically (scores are a pure function of
  // (seed, source, candidate), shared tree or not).
  for (int i = 0; i < kClients; ++i) {
    ASSERT_FALSE(replies[static_cast<size_t>(i)].empty()) << "client " << i;
    EXPECT_EQ(replies[static_cast<size_t>(i)], replies[0]);
  }
  // One build; everyone else hit the cache or coalesced onto the build.
  const TreeCache::Stats cache = server.tree_cache().stats();
  EXPECT_EQ(cache.misses, 1);
  EXPECT_EQ(cache.hits + cache.coalesced, kClients - 1);
  server.Shutdown();
}

TEST(ServerTest, GracefulShutdownDrainsInFlightQuery) {
  FailpointScope failpoints(3);
  // Make the query slow enough that shutdown starts while it is running.
  FailpointSpec slow;
  slow.action = FailpointAction::kLatency;
  slow.probability = 1.0;
  slow.latency_ms = 300;
  ASSERT_TRUE(ConfigureFailpoint("rev_reach.build", slow).ok());

  Server server(TestGraph(), std::nullopt, TestServerOptions());
  ASSERT_TRUE(server.Start().ok());
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  std::thread shutdown_thread([&server] {
    std::this_thread::sleep_for(milliseconds(100));
    server.Shutdown();
  });
  // Sent before shutdown begins, answered in full after it: the drain
  // guarantee.
  StatusOr<JsonValue> response = client.Call(TopKRequest(1007, 5));
  shutdown_thread.join();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->GetString("status", ""), "OK");
  ASSERT_NE(response->Find("scores"), nullptr);
  EXPECT_EQ(response->Find("scores")->items().size(), 5u);
}

TEST(ServerTest, MetricsEndpointServesPrometheusText) {
  Server server(TestGraph(), std::nullopt, TestServerOptions());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.metrics_port(), 0);

  // Prime at least one serve.* metric.
  {
    Client client(server.port());
    ASSERT_TRUE(client.connected());
    JsonValue ping = JsonValue::Object();
    ping.Set("op", JsonValue(std::string("ping")));
    ASSERT_TRUE(client.Call(ping).ok());
  }

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.metrics_port()));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string get = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(send(fd, get.data(), get.size(), 0),
            static_cast<ssize_t>(get.size()));
  std::string body;
  char buf[4096];
  for (;;) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    body.append(buf, static_cast<size_t>(n));
  }
  close(fd);

  EXPECT_NE(body.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(body.find("crashsim_serve_requests_total"), std::string::npos);
  EXPECT_NE(body.find("# TYPE"), std::string::npos);
  server.Shutdown();
}

}  // namespace
}  // namespace crashsim
