// Tier-2 scrape-vs-load race: /metrics, /statusz and /tracez scrapes
// hammering the metrics listener while query clients keep the executor,
// tree cache, rolling histograms and tracez ring hot. Every shared
// structure the debug endpoints read (executor ledger, cache stats,
// SlidingHistogram slots, TracezRing, RequestTrace sampling) is written
// concurrently by the serving threads, so the TSan lane proves the
// observability surface is race-free, not just the serving path.

#include <atomic>
#include <cstring>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/rng.h"

namespace crashsim {
namespace {

LoadedGraph StressGraph() {
  Rng rng(17);
  LoadedGraph loaded;
  loaded.graph = ErdosRenyi(200, 900, /*undirected=*/false, &rng);
  loaded.original_ids.resize(static_cast<size_t>(loaded.graph.num_nodes()));
  std::iota(loaded.original_ids.begin(), loaded.original_ids.end(),
            int64_t{0});
  return loaded;
}

// One framed query round trip on a fresh connection; true on an "OK"
// response. (Errors from shed load are fine — the point is traffic.)
bool RunTopK(int port, int64_t source) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return false;
  }
  JsonValue request = JsonValue::Object();
  request.Set("op", JsonValue(std::string("topk")));
  request.Set("source", JsonValue(source));
  request.Set("k", JsonValue(int64_t{5}));
  bool ok = false;
  if (WriteFrame(fd, request.Write()).ok()) {
    StatusOr<std::string> payload = ReadFrame(fd);
    if (payload.ok()) {
      StatusOr<JsonValue> response = ParseJson(*payload);
      ok = response.ok() && response->GetString("status", "") == "OK" &&
           response->GetInt("request_id", 0) > 0;
    }
  }
  close(fd);
  return ok;
}

// One GET against the metrics listener; returns the full response.
std::string HttpGet(int port, const std::string& path) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return "";
  }
  const std::string get = "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n";
  send(fd, get.data(), get.size(), 0);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

TEST(ScrapeStressTest, DebugEndpointsRaceLiveQueryLoad) {
  ServerOptions options;
  options.engine.mc.trials_override = 100;
  options.engine.mc.seed = 29;
  options.executor.degrade_at = 0.0;
  options.executor.max_concurrent = 4;
  options.executor.max_queue = 64;
  options.metrics_port = 0;
  options.tracez_sample_every = 1;  // insert into the ring on every request
  options.slow_query_ms = -1;       // no event log attached
  Server server(StressGraph(), std::nullopt, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kQueryThreads = 4;
  constexpr int kQueriesPerThread = 40;
  constexpr int kScrapeThreads = 3;  // one per endpoint
  std::atomic<int> queries_ok{0};
  std::atomic<bool> queries_done{false};
  std::atomic<int> scrapes_ok{0};
  std::atomic<int> scrapes_bad{0};

  std::vector<std::thread> threads;
  threads.reserve(kQueryThreads + kScrapeThreads);
  for (int t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back([&server, &queries_ok, t] {
      // A few hot sources so the cache sees hits, misses and evictions.
      for (int i = 0; i < kQueriesPerThread; ++i) {
        if (RunTopK(server.port(), (t * 7 + i) % 20)) {
          queries_ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  const char* kPaths[kScrapeThreads] = {"/metrics", "/statusz", "/tracez"};
  for (int s = 0; s < kScrapeThreads; ++s) {
    threads.emplace_back([&server, &queries_done, &scrapes_ok, &scrapes_bad,
                          path = std::string(kPaths[s])] {
      // Scrape until the query load finishes, then once more against the
      // quiesced server.
      do {
        const std::string response = HttpGet(server.metrics_port(), path);
        if (response.find("HTTP/1.1 200 OK") == 0) {
          scrapes_ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          scrapes_bad.fetch_add(1, std::memory_order_relaxed);
        }
      } while (!queries_done.load(std::memory_order_acquire));
    });
  }
  for (int t = 0; t < kQueryThreads; ++t) threads[static_cast<size_t>(t)].join();
  queries_done.store(true, std::memory_order_release);
  for (size_t t = kQueryThreads; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(queries_ok.load(), kQueryThreads * kQueriesPerThread);
  EXPECT_EQ(scrapes_bad.load(), 0);
  EXPECT_GE(scrapes_ok.load(), kScrapeThreads);  // each path scraped >= once

  // The quiesced /statusz totals must reconcile with the load we applied.
  const std::string statusz = HttpGet(server.metrics_port(), "/statusz");
  const size_t body_at = statusz.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  StatusOr<JsonValue> doc = ParseJson(statusz.substr(body_at + 4));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* executor = doc->Find("executor");
  ASSERT_NE(executor, nullptr);
  EXPECT_EQ(executor->GetInt("completed", -1),
            kQueryThreads * kQueriesPerThread);
  EXPECT_EQ(executor->GetInt("running", -1), 0);
  const JsonValue* latency = doc->Find("latency");
  ASSERT_NE(latency, nullptr);
  const JsonValue* topk_window = latency->Find("topk");
  ASSERT_NE(topk_window, nullptr);
  EXPECT_EQ(topk_window->GetInt("count", -1),
            kQueryThreads * kQueriesPerThread);
  server.Shutdown();
}

}  // namespace
}  // namespace crashsim
