#include "serve/protocol.h"

#include <atomic>
#include <string>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "util/status.h"

namespace crashsim {
namespace {

// A connected socketpair stands in for a TCP connection; the framing layer
// only sees fds.
class SocketPair : public ::testing::Test {
 protected:
  void SetUp() override {
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a_ = fds[0];
    b_ = fds[1];
  }
  void TearDown() override {
    if (a_ >= 0) close(a_);
    if (b_ >= 0) close(b_);
  }
  void CloseA() {
    close(a_);
    a_ = -1;
  }
  int a_ = -1;
  int b_ = -1;
};

TEST_F(SocketPair, FramesRoundTripInOrder) {
  ASSERT_TRUE(WriteFrame(a_, "{\"op\":\"ping\"}").ok());
  ASSERT_TRUE(WriteFrame(a_, "").ok());
  ASSERT_TRUE(WriteFrame(a_, std::string(100000, 'x')).ok());

  StatusOr<std::string> first = ReadFrame(b_);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, "{\"op\":\"ping\"}");
  StatusOr<std::string> second = ReadFrame(b_);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->empty());
  StatusOr<std::string> third = ReadFrame(b_);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->size(), 100000u);
}

TEST_F(SocketPair, CleanCloseAtBoundaryIsUnavailable) {
  ASSERT_TRUE(WriteFrame(a_, "last").ok());
  CloseA();
  StatusOr<std::string> frame = ReadFrame(b_);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(*frame, "last");
  EXPECT_EQ(ReadFrame(b_).status().code(), StatusCode::kUnavailable);
}

TEST_F(SocketPair, TruncatedFrameIsDataLoss) {
  // Header promises 100 bytes; only 3 arrive before EOF.
  const char header[4] = {0, 0, 0, 100};
  ASSERT_EQ(send(a_, header, 4, 0), 4);
  ASSERT_EQ(send(a_, "abc", 3, 0), 3);
  CloseA();
  EXPECT_EQ(ReadFrame(b_).status().code(), StatusCode::kDataLoss);
}

TEST_F(SocketPair, OversizedLengthPrefixIsRejectedWithoutAllocating) {
  const char header[4] = {0x7F, -1, -1, -1};  // ~2 GiB declared
  ASSERT_EQ(send(a_, header, 4, 0), 4);
  EXPECT_EQ(ReadFrame(b_).status().code(), StatusCode::kResourceExhausted);
  // A caller-supplied tighter cap also applies.
  ASSERT_TRUE(WriteFrame(a_, std::string(64, 'y')).ok());
  EXPECT_EQ(ReadFrame(b_, /*max_bytes=*/16).status().code(),
            StatusCode::kResourceExhausted);
}

TEST_F(SocketPair, StopFlagAbandonsIdleWait) {
  std::atomic<bool> stop{false};
  std::thread flipper([&stop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    stop.store(true);
  });
  // No bytes ever arrive; the wait must end via the stop flag, not block.
  const Status s = ReadFrame(b_, kMaxFramePayloadBytes, &stop).status();
  flipper.join();
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
}

TEST_F(SocketPair, OversizedWriteIsRefused) {
  // Refused before any bytes hit the wire (no partial frame corruption).
  const std::string huge(size_t{kMaxFramePayloadBytes} + 1, 'z');
  EXPECT_EQ(WriteFrame(a_, huge).code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(WriteFrame(a_, "still usable").ok());
  StatusOr<std::string> frame = ReadFrame(b_);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(*frame, "still usable");
}

}  // namespace
}  // namespace crashsim
