#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace crashsim {
namespace {

Graph Diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  return b.Build();
}

TEST(GraphTest, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(GraphTest, NodeAndEdgeCounts) {
  const Graph g = Diamond();
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 4);
}

TEST(GraphTest, OutNeighborsSorted) {
  const Graph g = Diamond();
  const auto out = g.OutNeighbors(0);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 2);
  EXPECT_TRUE(g.OutNeighbors(3).empty());
}

TEST(GraphTest, InNeighborsSorted) {
  const Graph g = Diamond();
  const auto in = g.InNeighbors(3);
  ASSERT_EQ(in.size(), 2u);
  EXPECT_EQ(in[0], 1);
  EXPECT_EQ(in[1], 2);
  EXPECT_TRUE(g.InNeighbors(0).empty());
}

TEST(GraphTest, Degrees) {
  const Graph g = Diamond();
  EXPECT_EQ(g.OutDegree(0), 2);
  EXPECT_EQ(g.InDegree(0), 0);
  EXPECT_EQ(g.InDegree(3), 2);
  EXPECT_EQ(g.OutDegree(3), 0);
  EXPECT_EQ(g.InDegree(1), 1);
}

TEST(GraphTest, HasEdge) {
  const Graph g = Diamond();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 3));
}

TEST(GraphTest, EdgesRoundTrip) {
  const Graph g = Diamond();
  const auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_EQ(edges[0], (Edge{0, 1}));
  EXPECT_EQ(edges[3], (Edge{2, 3}));
  // Rebuilding from Edges() yields an equal graph.
  EXPECT_EQ(BuildGraph(4, edges), g);
}

TEST(GraphTest, EqualityDetectsDifference) {
  const Graph a = Diamond();
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  EXPECT_FALSE(a == b.Build());
  EXPECT_TRUE(a == Diamond());
}

TEST(GraphTest, InOutConsistency) {
  // Every out-edge appears as the matching in-edge.
  const Graph g = Diamond();
  int64_t in_total = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    in_total += g.InDegree(v);
    for (NodeId w : g.InNeighbors(v)) EXPECT_TRUE(g.HasEdge(w, v));
  }
  EXPECT_EQ(in_total, g.num_edges());
}

TEST(GraphTest, UndirectedSymmetrised) {
  GraphBuilder b(3, /*undirected=*/true);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  const Graph g = b.Build();
  EXPECT_TRUE(g.undirected());
  EXPECT_EQ(g.num_edges(), 4);  // both directions stored
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_EQ(g.InDegree(1), 2);
  EXPECT_EQ(g.OutDegree(1), 2);
}

}  // namespace
}  // namespace crashsim
