#include "graph/edge.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace crashsim {
namespace {

TEST(EdgeTest, EqualityAndOrdering) {
  EXPECT_EQ((Edge{1, 2}), (Edge{1, 2}));
  EXPECT_NE((Edge{1, 2}), (Edge{2, 1}));
  EXPECT_LT((Edge{1, 2}), (Edge{1, 3}));
  EXPECT_LT((Edge{1, 9}), (Edge{2, 0}));  // src dominates
}

TEST(EdgeHashTest, DistinguishesOrientation) {
  EdgeHash h;
  EXPECT_NE(h(Edge{1, 2}), h(Edge{2, 1}));
}

TEST(EdgeHashTest, UsableInUnorderedSet) {
  std::unordered_set<Edge, EdgeHash> set;
  set.insert(Edge{1, 2});
  set.insert(Edge{1, 2});
  set.insert(Edge{2, 1});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(Edge{1, 2}));
  EXPECT_FALSE(set.contains(Edge{3, 4}));
}

TEST(EdgeHashTest, LowCollisionOnDenseIdRange) {
  // Sanity: the mixed hash should not collapse a small grid of edges.
  EdgeHash h;
  std::unordered_set<size_t> hashes;
  for (NodeId a = 0; a < 64; ++a) {
    for (NodeId b = 0; b < 64; ++b) hashes.insert(h(Edge{a, b}));
  }
  EXPECT_GT(hashes.size(), 4000u);  // 4096 pairs, near-zero collisions
}

}  // namespace
}  // namespace crashsim
