#include "graph/subgraph.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "util/rng.h"

namespace crashsim {
namespace {

TEST(InducedSubgraphTest, KeepsOnlyInternalEdges) {
  // 0->1->2->3, induce {1, 2}: only edge 1->2 survives.
  const Graph g = PathGraph(4, false);
  const InducedSubgraph sub = BuildInducedSubgraph(g, {1, 2});
  EXPECT_EQ(sub.graph.num_nodes(), 2);
  EXPECT_EQ(sub.graph.num_edges(), 1);
  EXPECT_TRUE(sub.graph.HasEdge(0, 1));  // remapped 1->2
}

TEST(InducedSubgraphTest, MappingsAreInverse) {
  const Graph g = PaperExampleGraph();
  const InducedSubgraph sub = BuildInducedSubgraph(g, {7, 2, 5});
  ASSERT_EQ(sub.to_original.size(), 3u);
  for (NodeId sv = 0; sv < sub.graph.num_nodes(); ++sv) {
    const NodeId original = sub.to_original[static_cast<size_t>(sv)];
    EXPECT_EQ(sub.to_sub[static_cast<size_t>(original)], sv);
  }
  // Excluded nodes map to -1.
  EXPECT_EQ(sub.to_sub[0], -1);
}

TEST(InducedSubgraphTest, DuplicatesIgnored) {
  const Graph g = PathGraph(4, false);
  const InducedSubgraph sub = BuildInducedSubgraph(g, {2, 1, 2, 1});
  EXPECT_EQ(sub.graph.num_nodes(), 2);
}

TEST(InducedSubgraphTest, EmptySelection) {
  const Graph g = PathGraph(4, false);
  const InducedSubgraph sub = BuildInducedSubgraph(g, {});
  EXPECT_EQ(sub.graph.num_nodes(), 0);
  EXPECT_EQ(sub.graph.num_edges(), 0);
}

TEST(InducedSubgraphTest, FullSelectionIsIsomorphic) {
  Rng rng(4);
  const Graph g = ErdosRenyi(30, 90, false, &rng);
  std::vector<NodeId> all;
  for (NodeId v = 0; v < 30; ++v) all.push_back(v);
  const InducedSubgraph sub = BuildInducedSubgraph(g, all);
  EXPECT_TRUE(sub.graph == g);  // identity remap preserves ids
}

TEST(InducedSubgraphTest, EdgeCountMatchesManualFilter) {
  Rng rng(5);
  const Graph g = ErdosRenyi(40, 200, false, &rng);
  Rng pick(6);
  std::vector<NodeId> nodes;
  std::vector<char> in_set(40, 0);
  for (NodeId v = 0; v < 40; ++v) {
    if (pick.Bernoulli(0.5)) {
      nodes.push_back(v);
      in_set[static_cast<size_t>(v)] = 1;
    }
  }
  int64_t expected = 0;
  for (const Edge& e : g.Edges()) {
    if (in_set[static_cast<size_t>(e.src)] && in_set[static_cast<size_t>(e.dst)]) {
      ++expected;
    }
  }
  const InducedSubgraph sub = BuildInducedSubgraph(g, nodes);
  EXPECT_EQ(sub.graph.num_edges(), expected);
}

}  // namespace
}  // namespace crashsim
