// Satellite hardening table: every adversarial edge-list input must come
// back as a descriptive Status — with the right code and a line-number
// diagnostic — never a crash, never a silent accept.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph_io.h"
#include "util/failpoint.h"

namespace crashsim {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& content) {
    path_ = testing::TempDir() + "/crashsim_malformed_" +
            std::to_string(counter_++) + ".txt";
    std::ofstream out(path_, std::ios::binary);  // binary: keep CRLF intact
    out << content;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  static int counter_;
  std::string path_;
};

int TempFile::counter_ = 0;

struct MalformedCase {
  const char* name;
  const char* content;
  bool temporal;
  StatusCode expected_code;
  const char* message_substring;
};

TEST(MalformedInputTest, EveryRowOfTheTableFailsDescriptively) {
  const std::vector<MalformedCase> kTable = {
      {"static-int64-overflow", "1 2\n99999999999999999999999999 3\n", false,
       StatusCode::kInvalidArgument, "line 2"},
      {"static-negative-src", "-7 2\n", false, StatusCode::kInvalidArgument,
       "negative node id -7"},
      {"static-negative-dst", "2 -9\n", false, StatusCode::kInvalidArgument,
       "negative node id -9"},
      {"static-three-columns", "1 2 3\n", false, StatusCode::kInvalidArgument,
       "expected 'src dst'"},
      {"static-one-column", "42\n", false, StatusCode::kInvalidArgument,
       "got 1 field"},
      {"static-float-id", "1.5 2\n", false, StatusCode::kInvalidArgument,
       "not a valid 64-bit integer"},
      {"temporal-negative-snapshot", "1 2 -1\n", true,
       StatusCode::kInvalidArgument, "negative snapshot index -1"},
      {"temporal-int64-overflow-snapshot", "1 2 99999999999999999999999999\n",
       true, StatusCode::kInvalidArgument, "line 1"},
      {"temporal-two-columns", "1 2\n", true, StatusCode::kInvalidArgument,
       "expected 'src dst snapshot'"},
      {"temporal-four-columns", "1 2 3 4\n", true,
       StatusCode::kInvalidArgument, "got 4 fields"},
      {"temporal-empty", "", true, StatusCode::kInvalidArgument,
       "no snapshots"},
      {"temporal-only-comments", "# nothing\n% here\n", true,
       StatusCode::kInvalidArgument, "no snapshots"},
      {"temporal-negative-node", "1 -2 0\n", true,
       StatusCode::kInvalidArgument, "negative node id -2"},
  };
  for (const MalformedCase& c : kTable) {
    TempFile f(c.content);
    const Status s =
        c.temporal ? LoadTemporalEdgeListFile(f.path(), false).status()
                   : LoadEdgeListFile(f.path(), false).status();
    EXPECT_EQ(s.code(), c.expected_code) << c.name << ": " << s;
    EXPECT_NE(s.message().find(c.message_substring), std::string::npos)
        << c.name << ": message was '" << s.message() << "'";
  }
}

TEST(MalformedInputTest, FileContextIsChainedIntoTheMessage) {
  TempFile f("1 -2 0\n");
  const Status s = LoadTemporalEdgeListFile(f.path(), false).status();
  ASSERT_FALSE(s.ok());
  // "path: line N: ..." — the WithContext chain keeps both the file and the
  // per-line diagnostic.
  EXPECT_NE(s.message().find(f.path()), std::string::npos) << s;
  EXPECT_NE(s.message().find("line 1"), std::string::npos) << s;
}

TEST(MalformedInputTest, CrlfFilesLoadIdenticallyToLf) {
  TempFile lf("1 2\n2 3\n");
  TempFile crlf("1 2\r\n2 3\r\n");
  const auto a = LoadEdgeListFile(lf.path(), false);
  const auto b = LoadEdgeListFile(crlf.path(), false);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a->graph.num_nodes(), b->graph.num_nodes());
  EXPECT_EQ(a->graph.num_edges(), b->graph.num_edges());
}

TEST(MalformedInputTest, EmptyStaticFileIsAnEmptyGraph) {
  // A static edge list with no rows is well-formed (unlike temporal files,
  // which need at least one snapshot).
  TempFile f("# header only\n");
  const auto loaded = LoadEdgeListFile(f.path(), false);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->graph.num_nodes(), 0);
  EXPECT_EQ(loaded->graph.num_edges(), 0);
}

TEST(MalformedInputTest, NodeLimitIsEnforced) {
  TempFile f("0 1\n2 3\n4 5\n");
  EdgeListLimits limits;
  limits.max_nodes = 4;
  const Status s = LoadEdgeListFile(f.path(), false, limits).status();
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s;
  EXPECT_NE(s.message().find("node limit"), std::string::npos) << s;
  limits.max_nodes = 6;
  EXPECT_TRUE(LoadEdgeListFile(f.path(), false, limits).ok());
}

TEST(MalformedInputTest, EdgeLimitIsEnforcedOnBothFormats) {
  EdgeListLimits limits;
  limits.max_edges = 2;
  {
    TempFile f("0 1\n1 2\n2 3\n");
    const Status s = LoadEdgeListFile(f.path(), false, limits).status();
    EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s;
    EXPECT_NE(s.message().find("line 3"), std::string::npos) << s;
  }
  {
    TempFile f("0 1 0\n1 2 0\n2 3 1\n");
    const Status s = LoadTemporalEdgeListFile(f.path(), false, limits).status();
    EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s;
  }
}

TEST(MalformedInputTest, TemporalNodeLimitIsEnforced) {
  TempFile f("0 1 0\n2 3 0\n");
  EdgeListLimits limits;
  limits.max_nodes = 3;
  const Status s = LoadTemporalEdgeListFile(f.path(), false, limits).status();
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s;
  EXPECT_NE(s.message().find("line 2"), std::string::npos) << s;
}

// Loader-OOM contract (docs/ROBUSTNESS.md): an allocation failure while
// buffering edges — injected here through the graph_io.alloc failpoint —
// must surface as a descriptive kResourceExhausted with the running byte
// estimate, never as an uncaught std::bad_alloc.
TEST(MalformedInputTest, InjectedAllocationFailureIsResourceExhausted) {
  TempFile f("0 1\n1 2\n2 3\n");
  FailpointScope scope(42);
  FailpointSpec spec;
  spec.action = FailpointAction::kBadAlloc;
  ASSERT_TRUE(ConfigureFailpoint("graph_io.alloc", spec).ok());
  const Status s = LoadEdgeListFile(f.path(), false).status();
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s;
  EXPECT_NE(s.message().find("out of memory"), std::string::npos) << s;
  EXPECT_NE(s.message().find("bytes"), std::string::npos) << s;
}

TEST(MalformedInputTest, InjectedTemporalAllocationFailureIsClean) {
  TempFile f("0 1 0\n1 2 0\n2 3 1\n");
  FailpointScope scope(42);
  FailpointSpec spec;
  spec.action = FailpointAction::kBadAlloc;
  ASSERT_TRUE(ConfigureFailpoint("graph_io.alloc", spec).ok());
  const Status s = LoadTemporalEdgeListFile(f.path(), false).status();
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s;
  EXPECT_NE(s.message().find("out of memory"), std::string::npos) << s;
}

TEST(MalformedInputTest, InjectedLoadFaultCarriesThePathContext) {
  TempFile f("0 1\n");
  FailpointScope scope(42);
  FailpointSpec spec;
  spec.action = FailpointAction::kError;
  spec.code = StatusCode::kUnavailable;
  ASSERT_TRUE(ConfigureFailpoint("graph_io.load", spec).ok());
  const Status s = LoadEdgeListFile(f.path(), false).status();
  EXPECT_EQ(s.code(), StatusCode::kUnavailable) << s;
  EXPECT_NE(s.message().find(f.path()), std::string::npos) << s;
}

}  // namespace
}  // namespace crashsim
