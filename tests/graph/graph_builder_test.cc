#include "graph/graph_builder.h"

#include <gtest/gtest.h>

namespace crashsim {
namespace {

TEST(GraphBuilderTest, DeduplicatesEdges) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);
  const Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(GraphBuilderTest, DropsSelfLoops) {
  GraphBuilder b(3);
  b.AddEdge(1, 1);
  b.AddEdge(0, 2);
  const Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_FALSE(g.HasEdge(1, 1));
}

TEST(GraphBuilderTest, BuildIsRepeatable) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  const Graph g1 = b.Build();
  b.AddEdge(1, 2);
  const Graph g2 = b.Build();
  EXPECT_EQ(g1.num_edges(), 1);
  EXPECT_EQ(g2.num_edges(), 2);
}

TEST(GraphBuilderTest, AddEdgesBulk) {
  GraphBuilder b(4);
  b.AddEdges({{0, 1}, {1, 2}, {2, 3}, {2, 3}});
  EXPECT_EQ(b.Build().num_edges(), 3);
}

TEST(GraphBuilderTest, IsolatedNodesAllowed) {
  GraphBuilder b(10);
  b.AddEdge(0, 1);
  const Graph g = b.Build();
  EXPECT_EQ(g.num_nodes(), 10);
  EXPECT_EQ(g.InDegree(9), 0);
  EXPECT_EQ(g.OutDegree(9), 0);
  EXPECT_TRUE(g.InNeighbors(9).empty());
}

TEST(GraphBuilderTest, UndirectedDedupAcrossOrientations) {
  GraphBuilder b(2, /*undirected=*/true);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);  // same undirected edge
  const Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 2);  // exactly the two directions
}

TEST(BuildGraphTest, Convenience) {
  const Graph g = BuildGraph(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 2);
}

}  // namespace
}  // namespace crashsim
