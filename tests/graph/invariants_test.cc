// Cross-cutting graph invariants: CHECK guard rails and properties that
// must hold for every generator and the snapshot machinery.
#include <gtest/gtest.h>

#include "datasets/datasets.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/snapshot_diff.h"
#include "graph/temporal_graph.h"
#include "util/rng.h"

namespace crashsim {
namespace {

using GraphDeathTest = testing::Test;

TEST(GraphDeathTest, BuilderRejectsOutOfRangeSource) {
  GraphBuilder b(3);
  EXPECT_DEATH(b.AddEdge(3, 0), "bad src");
}

TEST(GraphDeathTest, BuilderRejectsNegativeDestination) {
  GraphBuilder b(3);
  EXPECT_DEATH(b.AddEdge(0, -1), "bad dst");
}

TEST(GraphDeathTest, TemporalSnapshotOutOfRange) {
  TemporalGraphBuilder b(2);
  b.AddSnapshot({{0, 1}});
  const TemporalGraph tg = b.Build();
  EXPECT_DEATH(tg.SnapshotEdges(1), "snapshot");
  EXPECT_DEATH(tg.SnapshotEdges(-1), "snapshot");
}

TEST(GraphDeathTest, AddDeltaBeforeSnapshot) {
  TemporalGraphBuilder b(2);
  EXPECT_DEATH(b.AddDelta({{0, 1}}, {}), "initial snapshot");
}

class GeneratorInvariants : public testing::TestWithParam<std::string> {};

TEST_P(GeneratorInvariants, NoSelfLoopsAndConsistentAdjacency) {
  Rng rng(99);
  Graph g;
  const std::string& name = GetParam();
  if (name == "erdos_renyi") {
    g = ErdosRenyi(120, 500, false, &rng);
  } else if (name == "erdos_renyi_undirected") {
    g = ErdosRenyi(120, 260, true, &rng);
  } else if (name == "barabasi_albert") {
    g = BarabasiAlbert(150, 3, false, &rng);
  } else if (name == "barabasi_albert_undirected") {
    g = BarabasiAlbert(150, 3, true, &rng);
  } else {
    g = CopyingModel(150, 4, 0.5, &rng);
  }
  int64_t in_sum = 0;
  int64_t out_sum = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_FALSE(g.HasEdge(v, v)) << name;
    in_sum += g.InDegree(v);
    out_sum += g.OutDegree(v);
    // Adjacency lists sorted strictly (no duplicate edges).
    const auto out = g.OutNeighbors(v);
    for (size_t i = 1; i < out.size(); ++i) EXPECT_LT(out[i - 1], out[i]);
    // Every in-edge has the matching out-edge.
    for (NodeId w : g.InNeighbors(v)) EXPECT_TRUE(g.HasEdge(w, v));
  }
  EXPECT_EQ(in_sum, g.num_edges());
  EXPECT_EQ(out_sum, g.num_edges());
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GeneratorInvariants,
    testing::Values("erdos_renyi", "erdos_renyi_undirected", "barabasi_albert",
                    "barabasi_albert_undirected", "copying_model"),
    [](const testing::TestParamInfo<std::string>& param_info) { return param_info.param; });

class DatasetSnapshotInvariants : public testing::TestWithParam<std::string> {};

TEST_P(DatasetSnapshotInvariants, CursorMatchesDirectMaterialisation) {
  const Dataset ds = MakeDataset(GetParam(), 0.01, /*snapshots_override=*/6);
  SnapshotCursor cursor(&ds.temporal);
  int t = 0;
  do {
    EXPECT_TRUE(cursor.graph() == ds.temporal.Snapshot(t))
        << GetParam() << " snapshot " << t;
    ++t;
  } while (cursor.Advance());
  EXPECT_EQ(t, ds.temporal.num_snapshots());
}

TEST_P(DatasetSnapshotInvariants, DeltasReplayToSnapshots) {
  const Dataset ds = MakeDataset(GetParam(), 0.01, /*snapshots_override=*/5);
  std::vector<Edge> edges;
  for (int t = 0; t < ds.temporal.num_snapshots(); ++t) {
    ApplyDelta(ds.temporal.Delta(t), &edges);
    EXPECT_EQ(edges, ds.temporal.SnapshotEdges(t)) << GetParam() << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, DatasetSnapshotInvariants,
    testing::Values("as733", "as-caida", "wiki-vote", "hepth", "hepph"),
    [](const testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace crashsim
