#include "graph/temporal_graph.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace crashsim {
namespace {

TemporalGraph ThreeSnapshots() {
  // t0: 0->1, 1->2 ; t1: drop 1->2, add 2->0 ; t2: add 1->2 back.
  TemporalGraphBuilder b(3);
  b.AddSnapshot({{0, 1}, {1, 2}});
  b.AddSnapshot({{0, 1}, {2, 0}});
  b.AddSnapshot({{0, 1}, {2, 0}, {1, 2}});
  return b.Build();
}

TEST(TemporalGraphTest, SnapshotCountAndNodes) {
  const TemporalGraph tg = ThreeSnapshots();
  EXPECT_EQ(tg.num_snapshots(), 3);
  EXPECT_EQ(tg.num_nodes(), 3);
}

TEST(TemporalGraphTest, DeltasEncodeDifferences) {
  const TemporalGraph tg = ThreeSnapshots();
  EXPECT_EQ(tg.Delta(0).added.size(), 2u);
  EXPECT_TRUE(tg.Delta(0).removed.empty());
  EXPECT_EQ(tg.Delta(1).added, (std::vector<Edge>{{2, 0}}));
  EXPECT_EQ(tg.Delta(1).removed, (std::vector<Edge>{{1, 2}}));
  EXPECT_EQ(tg.Delta(2).added, (std::vector<Edge>{{1, 2}}));
  EXPECT_TRUE(tg.Delta(2).removed.empty());
}

TEST(TemporalGraphTest, SnapshotMaterialisation) {
  const TemporalGraph tg = ThreeSnapshots();
  const Graph g0 = tg.Snapshot(0);
  EXPECT_TRUE(g0.HasEdge(1, 2));
  EXPECT_FALSE(g0.HasEdge(2, 0));
  const Graph g1 = tg.Snapshot(1);
  EXPECT_FALSE(g1.HasEdge(1, 2));
  EXPECT_TRUE(g1.HasEdge(2, 0));
  const Graph g2 = tg.Snapshot(2);
  EXPECT_TRUE(g2.HasEdge(1, 2));
  EXPECT_TRUE(g2.HasEdge(2, 0));
  EXPECT_TRUE(g2.HasEdge(0, 1));
}

TEST(TemporalGraphTest, TotalEvents) {
  const TemporalGraph tg = ThreeSnapshots();
  EXPECT_EQ(tg.TotalEvents(), 2 + 2 + 1);
}

TEST(TemporalGraphBuilderTest, DuplicateAndSelfLoopNormalisation) {
  TemporalGraphBuilder b(3);
  b.AddSnapshot({{0, 1}, {0, 1}, {2, 2}});
  const TemporalGraph tg = b.Build();
  EXPECT_EQ(tg.SnapshotEdges(0), (std::vector<Edge>{{0, 1}}));
}

TEST(TemporalGraphBuilderTest, UndirectedSymmetrisesEverySnapshot) {
  TemporalGraphBuilder b(3, /*undirected=*/true);
  b.AddSnapshot({{0, 1}});
  b.AddSnapshot({{0, 1}, {1, 2}});
  const TemporalGraph tg = b.Build();
  const Graph g1 = tg.Snapshot(1);
  EXPECT_TRUE(g1.HasEdge(1, 2));
  EXPECT_TRUE(g1.HasEdge(2, 1));
  // Delta carries both orientations.
  EXPECT_EQ(tg.Delta(1).added.size(), 2u);
}

TEST(TemporalGraphBuilderTest, AddDeltaForm) {
  TemporalGraphBuilder b(4);
  b.AddSnapshot({{0, 1}, {1, 2}});
  b.AddDelta(/*added=*/{{2, 3}}, /*removed=*/{{0, 1}});
  const TemporalGraph tg = b.Build();
  const Graph g1 = tg.Snapshot(1);
  EXPECT_FALSE(g1.HasEdge(0, 1));
  EXPECT_TRUE(g1.HasEdge(2, 3));
  EXPECT_TRUE(g1.HasEdge(1, 2));
}

TEST(TemporalGraphBuilderTest, AddDeltaIgnoresNoOps) {
  TemporalGraphBuilder b(3);
  b.AddSnapshot({{0, 1}});
  // Adding an existing edge and removing a missing one are no-ops.
  b.AddDelta({{0, 1}}, {{1, 2}});
  const TemporalGraph tg = b.Build();
  EXPECT_TRUE(tg.Delta(1).Empty());
}

TEST(SnapshotCursorTest, WalksAllSnapshots) {
  const TemporalGraph tg = ThreeSnapshots();
  SnapshotCursor cursor(&tg);
  EXPECT_EQ(cursor.snapshot_index(), 0);
  EXPECT_TRUE(cursor.graph() == tg.Snapshot(0));
  ASSERT_TRUE(cursor.Advance());
  EXPECT_TRUE(cursor.graph() == tg.Snapshot(1));
  ASSERT_TRUE(cursor.Advance());
  EXPECT_TRUE(cursor.graph() == tg.Snapshot(2));
  EXPECT_FALSE(cursor.Advance());
  EXPECT_EQ(cursor.snapshot_index(), 2);
}

TEST(SnapshotCursorTest, GraphAddressStableAcrossAdvance) {
  const TemporalGraph tg = ThreeSnapshots();
  SnapshotCursor cursor(&tg);
  const Graph* addr = &cursor.graph();
  cursor.Advance();
  EXPECT_EQ(addr, &cursor.graph());
}

}  // namespace
}  // namespace crashsim
