#include "graph/temporal_generators.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace crashsim {
namespace {

TEST(EvolveWithChurnTest, FirstSnapshotEqualsBase) {
  Rng rng(1);
  const Graph base = ErdosRenyi(60, 150, false, &rng);
  ChurnOptions opt;
  opt.num_snapshots = 5;
  const TemporalGraph tg = EvolveWithChurn(base, opt, &rng);
  EXPECT_EQ(tg.num_snapshots(), 5);
  EXPECT_TRUE(tg.Snapshot(0) == base);
}

TEST(EvolveWithChurnTest, AdjacentSnapshotsDifferModestly) {
  Rng rng(2);
  const Graph base = ErdosRenyi(80, 300, false, &rng);
  ChurnOptions opt;
  opt.num_snapshots = 10;
  opt.churn_rate = 0.02;
  const TemporalGraph tg = EvolveWithChurn(base, opt, &rng);
  for (int t = 1; t < tg.num_snapshots(); ++t) {
    const EdgeDelta& d = tg.Delta(t);
    EXPECT_FALSE(d.Empty()) << "snapshot " << t;
    // Churn is bounded: each side well under 10% of edges.
    EXPECT_LT(d.Size(), 60u);
  }
}

TEST(EvolveWithChurnTest, EdgeCountRoughlyStationary) {
  Rng rng(3);
  const Graph base = ErdosRenyi(100, 400, false, &rng);
  ChurnOptions opt;
  opt.num_snapshots = 20;
  opt.churn_rate = 0.01;
  const TemporalGraph tg = EvolveWithChurn(base, opt, &rng);
  const size_t first = tg.SnapshotEdges(0).size();
  const size_t last = tg.SnapshotEdges(19).size();
  EXPECT_NEAR(static_cast<double>(last), static_cast<double>(first),
              0.2 * static_cast<double>(first));
}

TEST(EvolveWithChurnTest, UndirectedStaysSymmetric) {
  Rng rng(4);
  const Graph base = ErdosRenyi(50, 100, /*undirected=*/true, &rng);
  ChurnOptions opt;
  opt.num_snapshots = 6;
  const TemporalGraph tg = EvolveWithChurn(base, opt, &rng);
  for (int t = 0; t < tg.num_snapshots(); ++t) {
    const Graph g = tg.Snapshot(t);
    for (const Edge& e : g.Edges()) {
      EXPECT_TRUE(g.HasEdge(e.dst, e.src)) << "t=" << t;
    }
  }
}

TEST(EvolveWithChurnTest, DeterministicInSeed) {
  Rng ra(9);
  Rng rb(9);
  const Graph base_a = ErdosRenyi(40, 80, false, &ra);
  const Graph base_b = ErdosRenyi(40, 80, false, &rb);
  ChurnOptions opt;
  opt.num_snapshots = 4;
  const TemporalGraph ta = EvolveWithChurn(base_a, opt, &ra);
  const TemporalGraph tb = EvolveWithChurn(base_b, opt, &rb);
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(ta.SnapshotEdges(t), tb.SnapshotEdges(t));
  }
}

TEST(GrowTemporalGraphTest, NodeSetFixedEdgesGrow) {
  Rng rng(5);
  GrowthOptions opt;
  opt.num_snapshots = 12;
  opt.initial_fraction = 0.4;
  const TemporalGraph tg = GrowTemporalGraph(200, false, opt, &rng);
  EXPECT_EQ(tg.num_nodes(), 200);
  EXPECT_EQ(tg.num_snapshots(), 12);
  const size_t first = tg.SnapshotEdges(0).size();
  const size_t last = tg.SnapshotEdges(11).size();
  EXPECT_GT(last, first);
}

TEST(GrowTemporalGraphTest, LateArrivalsIsolatedEarly) {
  Rng rng(6);
  GrowthOptions opt;
  opt.num_snapshots = 10;
  opt.initial_fraction = 0.3;
  const TemporalGraph tg = GrowTemporalGraph(100, false, opt, &rng);
  const Graph g0 = tg.Snapshot(0);
  // The last-arriving node has no edges in the first snapshot.
  EXPECT_EQ(g0.InDegree(99) + g0.OutDegree(99), 0);
  const Graph gl = tg.Snapshot(9);
  EXPECT_GT(gl.InDegree(99) + gl.OutDegree(99), 0);
}

TEST(GrowTemporalGraphTest, UndirectedSymmetric) {
  Rng rng(7);
  GrowthOptions opt;
  opt.num_snapshots = 8;
  const TemporalGraph tg = GrowTemporalGraph(80, true, opt, &rng);
  const Graph g = tg.Snapshot(7);
  for (const Edge& e : g.Edges()) EXPECT_TRUE(g.HasEdge(e.dst, e.src));
}

}  // namespace
}  // namespace crashsim
