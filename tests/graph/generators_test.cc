#include "graph/generators.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace crashsim {
namespace {

TEST(ErdosRenyiTest, ExactEdgeCount) {
  Rng rng(1);
  const Graph g = ErdosRenyi(50, 120, /*undirected=*/false, &rng);
  EXPECT_EQ(g.num_nodes(), 50);
  EXPECT_EQ(g.num_edges(), 120);
}

TEST(ErdosRenyiTest, UndirectedDoublesStoredEdges) {
  Rng rng(2);
  const Graph g = ErdosRenyi(30, 40, /*undirected=*/true, &rng);
  EXPECT_EQ(g.num_edges(), 80);
  for (const Edge& e : g.Edges()) EXPECT_TRUE(g.HasEdge(e.dst, e.src));
}

TEST(ErdosRenyiTest, DeterministicInSeed) {
  Rng a(7);
  Rng b(7);
  EXPECT_EQ(ErdosRenyi(40, 80, false, &a), ErdosRenyi(40, 80, false, &b));
}

TEST(ErdosRenyiTest, NoSelfLoops) {
  Rng rng(3);
  const Graph g = ErdosRenyi(20, 100, false, &rng);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_FALSE(g.HasEdge(v, v));
}

TEST(BarabasiAlbertTest, SizesAndSkew) {
  Rng rng(4);
  const int k = 3;
  const Graph g = BarabasiAlbert(500, k, /*undirected=*/false, &rng);
  EXPECT_EQ(g.num_nodes(), 500);
  // Seed clique + k per arrival.
  const int64_t expected = (k + 1) * k / 2 + (500 - (k + 1)) * k;
  EXPECT_EQ(g.num_edges(), expected);
  // Heavy tail: the max in-degree should be far above the mean.
  int32_t max_in = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_in = std::max(max_in, g.InDegree(v));
  }
  const double mean_in = static_cast<double>(g.num_edges()) / g.num_nodes();
  EXPECT_GT(max_in, 5 * mean_in);
}

TEST(BarabasiAlbertTest, UndirectedVariantSymmetric) {
  Rng rng(5);
  const Graph g = BarabasiAlbert(100, 2, /*undirected=*/true, &rng);
  EXPECT_TRUE(g.undirected());
  for (const Edge& e : g.Edges()) EXPECT_TRUE(g.HasEdge(e.dst, e.src));
}

TEST(CopyingModelTest, ProducesRequestedNodes) {
  Rng rng(6);
  const Graph g = CopyingModel(300, 5, 0.5, &rng);
  EXPECT_EQ(g.num_nodes(), 300);
  EXPECT_GT(g.num_edges(), 300);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_FALSE(g.HasEdge(v, v));
}

TEST(CopyingModelTest, InDegreeSkewGrowsWithCopyProb) {
  Rng rng1(8);
  Rng rng2(8);
  const Graph low = CopyingModel(400, 4, 0.1, &rng1);
  const Graph high = CopyingModel(400, 4, 0.9, &rng2);
  auto max_in = [](const Graph& g) {
    int32_t m = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) m = std::max(m, g.InDegree(v));
    return m;
  };
  EXPECT_GT(max_in(high), max_in(low));
}

TEST(FixtureGraphsTest, PathGraph) {
  const Graph g = PathGraph(4, false);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_FALSE(g.HasEdge(3, 0));
}

TEST(FixtureGraphsTest, CycleGraph) {
  const Graph g = CycleGraph(5, false);
  EXPECT_EQ(g.num_edges(), 5);
  EXPECT_TRUE(g.HasEdge(4, 0));
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(g.InDegree(v), 1);
    EXPECT_EQ(g.OutDegree(v), 1);
  }
}

TEST(FixtureGraphsTest, CompleteGraph) {
  const Graph g = CompleteGraph(4, false);
  EXPECT_EQ(g.num_edges(), 12);
  const Graph u = CompleteGraph(4, true);
  EXPECT_EQ(u.num_edges(), 12);  // symmetrised pairs
}

TEST(FixtureGraphsTest, StarGraph) {
  const Graph g = StarGraph(5, false);
  EXPECT_EQ(g.OutDegree(0), 4);
  EXPECT_EQ(g.InDegree(0), 0);
  EXPECT_EQ(g.InDegree(3), 1);
}

TEST(PaperExampleGraphTest, MatchesReconstructedInNeighbourSets) {
  const Graph g = PaperExampleGraph();
  ASSERT_EQ(g.num_nodes(), 8);
  enum { A, B, C, D, E, F, G, H };
  auto in_set = [&](NodeId v) {
    const auto span = g.InNeighbors(v);
    return std::vector<NodeId>(span.begin(), span.end());
  };
  EXPECT_EQ(in_set(A), (std::vector<NodeId>{B, C}));
  EXPECT_EQ(in_set(B), (std::vector<NodeId>{A, E}));
  EXPECT_EQ(in_set(C), (std::vector<NodeId>{A, B, D}));
  EXPECT_EQ(in_set(D), (std::vector<NodeId>{B, C}));
  EXPECT_EQ(in_set(E), (std::vector<NodeId>{B, H}));
  EXPECT_EQ(in_set(F), (std::vector<NodeId>{G, H}));
  EXPECT_EQ(in_set(G), (std::vector<NodeId>{D}));
  EXPECT_EQ(in_set(H), (std::vector<NodeId>{F, G}));
}

TEST(PaperExampleGraphTest, NodeNames) {
  EXPECT_STREQ(PaperExampleNodeName(0), "A");
  EXPECT_STREQ(PaperExampleNodeName(7), "H");
}

}  // namespace
}  // namespace crashsim
