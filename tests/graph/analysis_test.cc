#include "graph/analysis.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace crashsim {
namespace {

TEST(AnalyzeGraphTest, PathGraphBasics) {
  const Graph g = PathGraph(4, false);  // 0->1->2->3
  const GraphStats s = AnalyzeGraph(g);
  EXPECT_EQ(s.num_nodes, 4);
  EXPECT_EQ(s.num_edges, 3);
  EXPECT_EQ(s.max_in_degree, 1);
  EXPECT_EQ(s.max_out_degree, 1);
  EXPECT_EQ(s.dead_end_nodes, 1);  // node 0
  EXPECT_DOUBLE_EQ(s.reciprocity, 0.0);
  EXPECT_EQ(s.weakly_connected_components, 1);
  EXPECT_EQ(s.largest_component, 4);
}

TEST(AnalyzeGraphTest, UndirectedIsFullyReciprocal) {
  const Graph g = CycleGraph(6, /*undirected=*/true);
  const GraphStats s = AnalyzeGraph(g);
  EXPECT_DOUBLE_EQ(s.reciprocity, 1.0);
  EXPECT_EQ(s.dead_end_nodes, 0);
}

TEST(AnalyzeGraphTest, ComponentsCounted) {
  // Two components plus an isolated node.
  const Graph g = BuildGraph(6, {{0, 1}, {1, 0}, {2, 3}});
  const GraphStats s = AnalyzeGraph(g);
  EXPECT_EQ(s.weakly_connected_components, 4);  // {0,1}, {2,3}, {4}, {5}
  EXPECT_EQ(s.largest_component, 2);
}

TEST(AnalyzeGraphTest, StarDegrees) {
  const Graph g = StarGraph(9, /*undirected=*/true);
  const GraphStats s = AnalyzeGraph(g);
  EXPECT_EQ(s.max_in_degree, 8);
  EXPECT_EQ(s.max_out_degree, 8);
  EXPECT_EQ(s.in_degrees.count(), 9);
  // hub in bucket [8,16), leaves in bucket [1,2).
  EXPECT_EQ(s.in_degrees.BucketCount(3), 1);
  EXPECT_EQ(s.in_degrees.BucketCount(0), 8);
}

TEST(AnalyzeGraphTest, EmptyGraph) {
  const Graph g;
  const GraphStats s = AnalyzeGraph(g);
  EXPECT_EQ(s.num_nodes, 0);
  EXPECT_EQ(s.weakly_connected_components, 0);
  EXPECT_DOUBLE_EQ(s.reciprocity, 0.0);
}

TEST(AnalyzeGraphTest, GeneratorInvariantBarabasiAlbertSkew) {
  Rng rng(3);
  const Graph g = BarabasiAlbert(600, 3, false, &rng);
  const GraphStats s = AnalyzeGraph(g);
  // Preferential attachment: single giant component, heavy in-degree tail.
  EXPECT_EQ(s.weakly_connected_components, 1);
  EXPECT_GT(s.max_in_degree, 10 * 3);
}

TEST(AnalyzeGraphTest, SummaryMentionsKeyFields) {
  const Graph g = PathGraph(3, false);
  const std::string text = Summary(AnalyzeGraph(g));
  EXPECT_NE(text.find("n=3"), std::string::npos);
  EXPECT_NE(text.find("wcc=1"), std::string::npos);
  EXPECT_NE(text.find("reciprocity="), std::string::npos);
}

}  // namespace
}  // namespace crashsim
