#include "graph/snapshot_diff.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "util/rng.h"

namespace crashsim {
namespace {

TEST(DiffEdgeSetsTest, DisjointAddRemove) {
  const std::vector<Edge> before{{0, 1}, {1, 2}};
  const std::vector<Edge> after{{0, 1}, {2, 3}};
  const EdgeDelta d = DiffEdgeSets(before, after);
  EXPECT_EQ(d.added, (std::vector<Edge>{{2, 3}}));
  EXPECT_EQ(d.removed, (std::vector<Edge>{{1, 2}}));
}

TEST(DiffEdgeSetsTest, IdenticalSetsEmptyDelta) {
  const std::vector<Edge> e{{0, 1}, {1, 2}};
  EXPECT_TRUE(DiffEdgeSets(e, e).Empty());
}

TEST(DiffEdgeSetsTest, EmptyBeforeAndAfter) {
  const std::vector<Edge> e{{4, 5}};
  EXPECT_EQ(DiffEdgeSets({}, e).added.size(), 1u);
  EXPECT_EQ(DiffEdgeSets(e, {}).removed.size(), 1u);
  EXPECT_TRUE(DiffEdgeSets({}, {}).Empty());
}

TEST(ApplyDeltaTest, RoundTripsWithDiff) {
  Rng rng(17);
  // Random before/after pairs: applying Diff(before, after) to before must
  // yield after exactly.
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Edge> before;
    std::vector<Edge> after;
    for (int i = 0; i < 30; ++i) {
      const Edge e{static_cast<NodeId>(rng.NextBounded(10)),
                   static_cast<NodeId>(rng.NextBounded(10))};
      if (rng.Bernoulli(0.5)) before.push_back(e);
      if (rng.Bernoulli(0.5)) after.push_back(e);
    }
    auto normalize = [](std::vector<Edge>* v) {
      std::sort(v->begin(), v->end());
      v->erase(std::unique(v->begin(), v->end()), v->end());
    };
    normalize(&before);
    normalize(&after);
    const EdgeDelta d = DiffEdgeSets(before, after);
    std::vector<Edge> result = before;
    ApplyDelta(d, &result);
    EXPECT_EQ(result, after) << "trial " << trial;
  }
}

TEST(ApplyDeltaTest, ToleratesNoOps) {
  std::vector<Edge> edges{{0, 1}};
  EdgeDelta d;
  d.added = {{0, 1}};   // already present
  d.removed = {{5, 6}};  // not present
  ApplyDelta(d, &edges);
  EXPECT_EQ(edges, (std::vector<Edge>{{0, 1}}));
}

TEST(ForwardReachableTest, PathDepths) {
  const Graph g = PathGraph(5, false);  // 0->1->2->3->4
  EXPECT_EQ(ForwardReachableWithin(g, 0, 0), (std::vector<NodeId>{0}));
  EXPECT_EQ(ForwardReachableWithin(g, 0, 2), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(ForwardReachableWithin(g, 0, 10),
            (std::vector<NodeId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(ForwardReachableWithin(g, 4, 3), (std::vector<NodeId>{4}));
}

TEST(ForwardReachableTest, CycleSaturates) {
  const Graph g = CycleGraph(4, false);
  const auto r = ForwardReachableWithin(g, 0, 100);
  EXPECT_EQ(r.size(), 4u);
}

TEST(ForwardReachableTest, BranchingBfsOrder) {
  // 0 -> {1, 2}, 1 -> 3.
  const Graph g = BuildGraph(4, {{0, 1}, {0, 2}, {1, 3}});
  const auto r = ForwardReachableWithin(g, 0, 1);
  EXPECT_EQ(r, (std::vector<NodeId>{0, 1, 2}));
}

TEST(ReverseReachableTest, PathDepths) {
  const Graph g = PathGraph(5, false);  // 0->1->2->3->4
  EXPECT_EQ(ReverseReachableWithin(g, 4, 0), (std::vector<NodeId>{4}));
  EXPECT_EQ(ReverseReachableWithin(g, 4, 2), (std::vector<NodeId>{4, 3, 2}));
  EXPECT_EQ(ReverseReachableWithin(g, 0, 3), (std::vector<NodeId>{0}));
}

TEST(ReverseReachableTest, MirrorsForwardOnReversedGraph) {
  Rng rng(23);
  const Graph g = ErdosRenyi(30, 120, false, &rng);
  // Reverse of g: flip every edge.
  std::vector<Edge> flipped;
  for (const Edge& e : g.Edges()) flipped.push_back({e.dst, e.src});
  const Graph rev = BuildGraph(30, flipped);
  for (NodeId v : {0, 7, 19}) {
    auto a = ReverseReachableWithin(g, v, 3);
    auto b = ForwardReachableWithin(rev, v, 3);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "node " << static_cast<int>(v);
  }
}

}  // namespace
}  // namespace crashsim
