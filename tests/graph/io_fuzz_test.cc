// Adversarial inputs for the edge-list parsers: the loaders must reject
// malformed input with a useful error (never crash, never silently accept),
// and accept every well-formed quirk (comments, blank lines, extra columns,
// weird whitespace).
#include <sstream>

#include <gtest/gtest.h>

#include "graph/graph_io.h"
#include "util/rng.h"

namespace crashsim {
namespace {

bool ParseStatic(const std::string& content, std::string* error) {
  std::istringstream in(content);
  std::vector<std::pair<int64_t, int64_t>> edges;
  return ReadEdgeList(in, &edges, error);
}

TEST(EdgeListFuzzTest, AcceptsWellFormedQuirks) {
  std::string error;
  EXPECT_TRUE(ParseStatic("", &error));
  EXPECT_TRUE(ParseStatic("\n\n\n", &error));
  EXPECT_TRUE(ParseStatic("# only a comment\n", &error));
  EXPECT_TRUE(ParseStatic("% matrix-market style comment\n1 2\n", &error));
  EXPECT_TRUE(ParseStatic("1\t2\n", &error)) << error;          // tabs
  EXPECT_TRUE(ParseStatic("  1   2  \n", &error)) << error;     // padding
  EXPECT_TRUE(ParseStatic("1 2 extra columns ok\n", &error)) << error;
  EXPECT_TRUE(ParseStatic("1 2", &error)) << error;  // no trailing newline
}

TEST(EdgeListFuzzTest, RejectsMalformedLines) {
  std::string error;
  EXPECT_FALSE(ParseStatic("1\n", &error));
  EXPECT_FALSE(ParseStatic("one two\n", &error));
  EXPECT_FALSE(ParseStatic("1 2\n3 x\n", &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_FALSE(ParseStatic("1.5 2\n", &error));
  EXPECT_FALSE(ParseStatic("99999999999999999999999999 1\n", &error));
}

TEST(EdgeListFuzzTest, RandomByteSoupNeverCrashes) {
  Rng rng(99);
  const char kAlphabet[] = "0123456789 \t\n#%-.abcXYZ";
  for (int trial = 0; trial < 200; ++trial) {
    std::string soup;
    const int len = static_cast<int>(rng.NextBounded(200));
    for (int i = 0; i < len; ++i) {
      soup.push_back(kAlphabet[rng.NextBounded(sizeof(kAlphabet) - 1)]);
    }
    std::string error;
    ParseStatic(soup, &error);  // outcome is input-dependent; no crash/UB
  }
}

TEST(EdgeListFuzzTest, RandomValidFilesAlwaysParse) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::ostringstream content;
    const int lines = 1 + static_cast<int>(rng.NextBounded(50));
    for (int i = 0; i < lines; ++i) {
      if (rng.Bernoulli(0.2)) {
        content << "# comment " << i << "\n";
      } else {
        content << rng.NextBounded(1000) << ' ' << rng.NextBounded(1000)
                << '\n';
      }
    }
    std::string error;
    EXPECT_TRUE(ParseStatic(content.str(), &error)) << error;
  }
}

}  // namespace
}  // namespace crashsim
