// Adversarial inputs for the edge-list parsers: the loaders must reject
// malformed input with a useful Status (never crash, never silently accept),
// and accept every well-formed quirk (comments, blank lines, CRLF endings,
// weird whitespace).
#include <sstream>

#include <gtest/gtest.h>

#include "graph/graph_io.h"
#include "util/rng.h"

namespace crashsim {
namespace {

Status ParseStatic(const std::string& content,
                   const EdgeListLimits& limits = {}) {
  std::istringstream in(content);
  return ReadEdgeList(in, limits).status();
}

TEST(EdgeListFuzzTest, AcceptsWellFormedQuirks) {
  EXPECT_TRUE(ParseStatic("").ok());
  EXPECT_TRUE(ParseStatic("\n\n\n").ok());
  EXPECT_TRUE(ParseStatic("# only a comment\n").ok());
  EXPECT_TRUE(ParseStatic("% matrix-market style comment\n1 2\n").ok());
  EXPECT_TRUE(ParseStatic("1\t2\n").ok());       // tabs
  EXPECT_TRUE(ParseStatic("  1   2  \n").ok());  // padding
  EXPECT_TRUE(ParseStatic("1 2").ok());          // no trailing newline
  EXPECT_TRUE(ParseStatic("1 2\r\n3 4\r\n").ok());  // Windows CRLF
}

TEST(EdgeListFuzzTest, ExtraColumnsAreOptIn) {
  // Strict by default: a weight/timestamp column is a column-count error...
  const Status strict = ParseStatic("1 2 extra columns\n");
  EXPECT_EQ(strict.code(), StatusCode::kInvalidArgument);
  // ...but SNAP exports with trailing columns load with the explicit opt-in.
  EdgeListLimits permissive;
  permissive.allow_extra_columns = true;
  EXPECT_TRUE(ParseStatic("1 2 extra columns\n", permissive).ok());
}

TEST(EdgeListFuzzTest, RejectsMalformedLines) {
  EXPECT_EQ(ParseStatic("1\n").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseStatic("one two\n").code(), StatusCode::kInvalidArgument);
  const Status s = ParseStatic("1 2\n3 x\n");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("line 2"), std::string::npos);
  EXPECT_EQ(ParseStatic("1.5 2\n").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseStatic("99999999999999999999999999 1\n").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseStatic("-1 2\n").code(), StatusCode::kInvalidArgument);
}

TEST(EdgeListFuzzTest, RandomByteSoupNeverCrashes) {
  Rng rng(99);
  const char kAlphabet[] = "0123456789 \t\n\r#%-.abcXYZ";
  for (int trial = 0; trial < 200; ++trial) {
    std::string soup;
    const int len = static_cast<int>(rng.NextBounded(200));
    for (int i = 0; i < len; ++i) {
      soup.push_back(kAlphabet[rng.NextBounded(sizeof(kAlphabet) - 1)]);
    }
    (void)ParseStatic(soup);  // outcome is input-dependent; no crash/UB
  }
}

TEST(EdgeListFuzzTest, RandomValidFilesAlwaysParse) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::ostringstream content;
    const int lines = 1 + static_cast<int>(rng.NextBounded(50));
    for (int i = 0; i < lines; ++i) {
      if (rng.Bernoulli(0.2)) {
        content << "# comment " << i << "\n";
      } else {
        content << rng.NextBounded(1000) << ' ' << rng.NextBounded(1000)
                << '\n';
      }
    }
    const Status s = ParseStatic(content.str());
    EXPECT_TRUE(s.ok()) << s;
  }
}

}  // namespace
}  // namespace crashsim
