#include "graph/graph_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace crashsim {
namespace {

// Writes content to a unique temp file and returns its path.
class TempFile {
 public:
  explicit TempFile(const std::string& content) {
    path_ = testing::TempDir() + "/crashsim_io_test_" +
            std::to_string(counter_++) + ".txt";
    std::ofstream out(path_);
    out << content;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  static int counter_;
  std::string path_;
};

int TempFile::counter_ = 0;

TEST(ReadEdgeListTest, ParsesWithCommentsAndBlanks) {
  std::istringstream in("# header\n1 2\n\n% other comment\n2 3\n");
  const auto edges = ReadEdgeList(in);
  ASSERT_TRUE(edges.ok()) << edges.status();
  ASSERT_EQ(edges->size(), 2u);
  EXPECT_EQ((*edges)[0], (std::pair<int64_t, int64_t>{1, 2}));
}

TEST(ReadEdgeListTest, RejectsMalformedLine) {
  std::istringstream in("1 2\nbroken\n");
  const auto edges = ReadEdgeList(in);
  ASSERT_FALSE(edges.ok());
  EXPECT_EQ(edges.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(edges.status().message().find("line 2"), std::string::npos);
}

TEST(LoadEdgeListFileTest, RemapsSparseIds) {
  TempFile f("100 7\n7 100\n100 42\n");
  const auto loaded = LoadEdgeListFile(f.path(), false);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->graph.num_nodes(), 3);
  EXPECT_EQ(loaded->graph.num_edges(), 3);
  // First-appearance order: 100 -> 0, 7 -> 1, 42 -> 2.
  ASSERT_EQ(loaded->original_ids.size(), 3u);
  EXPECT_EQ(loaded->original_ids[0], 100);
  EXPECT_EQ(loaded->original_ids[1], 7);
  EXPECT_EQ(loaded->original_ids[2], 42);
  EXPECT_TRUE(loaded->graph.HasEdge(0, 1));
  EXPECT_TRUE(loaded->graph.HasEdge(1, 0));
  EXPECT_TRUE(loaded->graph.HasEdge(0, 2));
}

TEST(LoadEdgeListFileTest, MissingFileFails) {
  const auto loaded = LoadEdgeListFile("/nonexistent/xyz.txt", false);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  EXPECT_NE(loaded.status().message().find("cannot open"), std::string::npos);
}

TEST(EdgeListRoundTripTest, WriteThenLoadEqualGraph) {
  Rng rng(3);
  const Graph g = ErdosRenyi(40, 100, false, &rng);
  std::ostringstream out;
  WriteEdgeList(g, out);
  TempFile f(out.str());
  const auto loaded = LoadEdgeListFile(f.path(), false);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  // Ids were already dense and written in sorted order, so the graphs have
  // identical edge counts and each edge survives (possibly renumbered).
  EXPECT_EQ(loaded->graph.num_edges(), g.num_edges());
}

TEST(TemporalEdgeListTest, LoadGroupsSnapshots) {
  TempFile f(
      "# u v t\n"
      "1 2 0\n"
      "2 3 0\n"
      "1 2 5\n"  // snapshot indices need not be contiguous
      "3 4 5\n");
  const auto loaded = LoadTemporalEdgeListFile(f.path(), false);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->graph.num_snapshots(), 2);
  EXPECT_EQ(loaded->graph.num_nodes(), 4);
  const Graph g0 = loaded->graph.Snapshot(0);
  EXPECT_TRUE(g0.HasEdge(0, 1));
  EXPECT_TRUE(g0.HasEdge(1, 2));
  const Graph g1 = loaded->graph.Snapshot(1);
  EXPECT_TRUE(g1.HasEdge(0, 1));
  EXPECT_FALSE(g1.HasEdge(1, 2));
  EXPECT_TRUE(g1.HasEdge(2, 3));
}

TEST(TemporalEdgeListTest, RoundTrip) {
  TemporalGraphBuilder b(3);
  b.AddSnapshot({{0, 1}});
  b.AddSnapshot({{0, 1}, {1, 2}});
  const TemporalGraph tg = b.Build();
  std::ostringstream out;
  WriteTemporalEdgeList(tg, out);
  TempFile f(out.str());
  const auto loaded = LoadTemporalEdgeListFile(f.path(), false);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->graph.num_snapshots(), 2);
  EXPECT_EQ(loaded->graph.SnapshotEdges(1).size(), 2u);
}

TEST(TemporalEdgeListTest, EmptyFileFails) {
  TempFile f("# only comments\n");
  const auto loaded = LoadTemporalEdgeListFile(f.path(), false);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("no snapshots"), std::string::npos);
}

}  // namespace
}  // namespace crashsim
