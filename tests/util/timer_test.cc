#include "util/timer.h"

#include <chrono>
#include <cstdint>
#include <thread>
#include <type_traits>

#include <gtest/gtest.h>

namespace crashsim {
namespace {

// All elapsed-time measurement in the repo is pinned to the monotonic clock;
// wall-clock (system_clock) jumps must never show up as negative durations.
static_assert(std::is_same_v<Stopwatch::Clock, std::chrono::steady_clock>,
              "Stopwatch must measure on steady_clock");

TEST(SteadyNowNanosTest, NeverRunsBackwards) {
  int64_t prev = SteadyNowNanos();
  for (int i = 0; i < 1000; ++i) {
    const int64_t now = SteadyNowNanos();
    ASSERT_GE(now, prev);
    prev = now;
  }
}

TEST(StopwatchTest, ElapsedIsMonotonic) {
  Stopwatch sw;
  const double a = sw.ElapsedSeconds();
  const double b = sw.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(StopwatchTest, MeasuresSleepsApproximately) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double ms = sw.ElapsedMillis();
  EXPECT_GE(ms, 18.0);
  EXPECT_LT(ms, 500.0);  // generous upper bound for loaded machines
}

TEST(StopwatchTest, UnitsAreConsistent) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double s = sw.ElapsedSeconds();
  const double ms = sw.ElapsedMillis();
  const double us = sw.ElapsedMicros();
  EXPECT_NEAR(ms / 1000.0, s, 0.01);
  EXPECT_NEAR(us / 1000.0, ms, 10.0);
}

TEST(StopwatchTest, ResetRestartsFromZero) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sw.Reset();
  EXPECT_LT(sw.ElapsedMillis(), 8.0);
}

}  // namespace
}  // namespace crashsim
