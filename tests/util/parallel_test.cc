#include "util/parallel.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace crashsim {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  const int64_t kN = 100000;
  std::vector<std::atomic<int>> touched(kN);
  ParallelFor(kN, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) touched[static_cast<size_t>(i)]++;
  });
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(touched[static_cast<size_t>(i)].load(), 1) << i;
  }
}

TEST(ParallelForTest, SmallInputRunsInline) {
  // Below min_chunk the callback must run exactly once over the full range.
  int calls = 0;
  ParallelFor(
      10,
      [&](int64_t begin, int64_t end) {
        ++calls;
        EXPECT_EQ(begin, 0);
        EXPECT_EQ(end, 10);
      },
      /*min_chunk=*/1024);
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, ZeroAndNegativeAreNoOps) {
  int calls = 0;
  ParallelFor(0, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(-5, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, RangesAreDisjointAndOrderedWithinChunk) {
  std::atomic<int64_t> total{0};
  ParallelFor(
      5000,
      [&](int64_t begin, int64_t end) {
        EXPECT_LE(begin, end);
        total += end - begin;
      },
      /*min_chunk=*/64);
  EXPECT_EQ(total.load(), 5000);
}

TEST(ParallelForTest, WorkerExceptionIsRethrownAfterJoin) {
  // Regression: an exception escaping a worker thread used to reach the
  // thread boundary and call std::terminate. It must now surface on the
  // calling thread after every worker joined.
  const int64_t kN = 100000;
  std::atomic<int64_t> processed{0};
  auto boom = [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      if (i == kN / 2) throw std::runtime_error("worker failure at midpoint");
      processed++;
    }
  };
  EXPECT_THROW(ParallelFor(kN, boom, /*min_chunk=*/64), std::runtime_error);
  // All chunks either completed or stopped at the throwing index — nothing
  // deadlocked and the count is sane.
  EXPECT_LT(processed.load(), kN);
}

TEST(ParallelForTest, InlinePathPropagatesExceptionToo) {
  EXPECT_THROW(
      ParallelFor(
          5, [](int64_t, int64_t) { throw std::logic_error("inline"); },
          /*min_chunk=*/1024),
      std::logic_error);
}

TEST(ParallelForTest, FirstExceptionWinsWhenSeveralWorkersThrow) {
  EXPECT_THROW(ParallelFor(
                   100000,
                   [](int64_t begin, int64_t) {
                     throw std::runtime_error("chunk " + std::to_string(begin));
                   },
                   /*min_chunk=*/64),
               std::runtime_error);
}

TEST(ParallelForTest, ParallelSumMatchesSequential) {
  const int64_t kN = 200000;
  std::vector<int64_t> values(kN);
  std::iota(values.begin(), values.end(), 1);
  std::atomic<int64_t> sum{0};
  ParallelFor(kN, [&](int64_t begin, int64_t end) {
    int64_t local = 0;
    for (int64_t i = begin; i < end; ++i) local += values[static_cast<size_t>(i)];
    sum += local;
  });
  EXPECT_EQ(sum.load(), kN * (kN + 1) / 2);
}

}  // namespace
}  // namespace crashsim
