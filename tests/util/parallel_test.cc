#include "util/parallel.h"

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/metrics.h"

namespace crashsim {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  const int64_t kN = 100000;
  std::vector<std::atomic<int>> touched(kN);
  ParallelFor(kN, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) touched[static_cast<size_t>(i)]++;
  });
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(touched[static_cast<size_t>(i)].load(), 1) << i;
  }
}

TEST(ParallelForTest, SmallInputRunsInline) {
  // Below min_chunk the callback must run exactly once over the full range.
  int calls = 0;
  ParallelFor(
      10,
      [&](int64_t begin, int64_t end) {
        ++calls;
        EXPECT_EQ(begin, 0);
        EXPECT_EQ(end, 10);
      },
      /*min_chunk=*/1024);
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, ZeroAndNegativeAreNoOps) {
  int calls = 0;
  ParallelFor(0, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(-5, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, RangesAreDisjointAndOrderedWithinChunk) {
  std::atomic<int64_t> total{0};
  ParallelFor(
      5000,
      [&](int64_t begin, int64_t end) {
        EXPECT_LE(begin, end);
        total += end - begin;
      },
      /*min_chunk=*/64);
  EXPECT_EQ(total.load(), 5000);
}

TEST(ParallelForTest, WorkerExceptionIsRethrownAfterJoin) {
  // Regression: an exception escaping a worker thread used to reach the
  // thread boundary and call std::terminate. It must now surface on the
  // calling thread after every worker joined.
  const int64_t kN = 100000;
  std::atomic<int64_t> processed{0};
  auto boom = [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      if (i == kN / 2) throw std::runtime_error("worker failure at midpoint");
      processed++;
    }
  };
  EXPECT_THROW(ParallelFor(kN, boom, /*min_chunk=*/64), std::runtime_error);
  // All chunks either completed or stopped at the throwing index — nothing
  // deadlocked and the count is sane.
  EXPECT_LT(processed.load(), kN);
}

TEST(ParallelForTest, InlinePathPropagatesExceptionToo) {
  EXPECT_THROW(
      ParallelFor(
          5, [](int64_t, int64_t) { throw std::logic_error("inline"); },
          /*min_chunk=*/1024),
      std::logic_error);
}

TEST(ParallelForTest, FirstExceptionWinsWhenSeveralWorkersThrow) {
  EXPECT_THROW(ParallelFor(
                   100000,
                   [](int64_t begin, int64_t) {
                     throw std::runtime_error("chunk " + std::to_string(begin));
                   },
                   /*min_chunk=*/64),
               std::runtime_error);
}

TEST(ParallelForTest, MaxThreadsBoundsWorkerCount) {
  // max_threads = 2 must mean at most two threads touch the range — the
  // caller plus one pool worker — no matter how large the range is.
  const int64_t kN = 100000;
  std::mutex mu;
  std::set<std::thread::id> ids;
  ParallelFor(
      kN,
      [&](int64_t, int64_t) {
        const std::lock_guard<std::mutex> lock(mu);
        ids.insert(std::this_thread::get_id());
      },
      /*min_chunk=*/64, /*max_threads=*/2);
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_TRUE(ids.count(std::this_thread::get_id()));
}

TEST(ParallelForTest, MaxThreadsOneRunsInlineOnCaller) {
  std::set<std::thread::id> ids;
  int calls = 0;
  ParallelFor(
      100000,
      [&](int64_t begin, int64_t end) {
        ++calls;
        EXPECT_EQ(begin, 0);
        EXPECT_EQ(end, 100000);
        ids.insert(std::this_thread::get_id());
      },
      /*min_chunk=*/64, /*max_threads=*/1);
  EXPECT_EQ(calls, 1);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_TRUE(ids.count(std::this_thread::get_id()));
}

TEST(ParallelForTest, PoolThreadsAreReusedAcrossCalls) {
  // Regression for the per-call std::thread churn: across many invocations
  // the set of distinct worker ids stays bounded by the persistent pool
  // (caller + ParallelWorkerCount()), where fresh-thread spawning would have
  // produced one new id per call.
  std::mutex mu;
  std::set<std::thread::id> ids;
  for (int rep = 0; rep < 50; ++rep) {
    ParallelFor(
        10000,
        [&](int64_t, int64_t) {
          const std::lock_guard<std::mutex> lock(mu);
          ids.insert(std::this_thread::get_id());
        },
        /*min_chunk=*/64, /*max_threads=*/4);
  }
  EXPECT_LE(ids.size(), static_cast<size_t>(ParallelWorkerCount()) + 1);
}

TEST(ParallelForTest, ChunkBoundariesDependOnlyOnParameters) {
  // Determinism contract: the decomposition is a pure function of
  // (n, min_chunk, max_threads), so two identical calls see identical
  // chunk boundaries regardless of scheduling.
  auto boundaries = [](int64_t n, int64_t min_chunk, int max_threads) {
    std::mutex mu;
    std::set<std::pair<int64_t, int64_t>> out;
    ParallelFor(
        n,
        [&](int64_t begin, int64_t end) {
          const std::lock_guard<std::mutex> lock(mu);
          out.insert({begin, end});
        },
        min_chunk, max_threads);
    return out;
  };
  EXPECT_EQ(boundaries(5000, 64, 2), boundaries(5000, 64, 2));
}

TEST(ParallelForTest, LowestBeginExceptionWinsDeterministically) {
  // When several chunks throw, the rethrown exception must be the one from
  // the lowest begin index — a deterministic pick, independent of which
  // worker lost the race — so a fault injected into a parallel trial block
  // reports the same Status on every run.
  for (int rep = 0; rep < 20; ++rep) {
    std::string caught;
    try {
      ParallelFor(
          100000,
          [](int64_t begin, int64_t) {
            if (begin % 128 == 0) {
              throw std::runtime_error("chunk " + std::to_string(begin));
            }
          },
          /*min_chunk=*/64);
      FAIL() << "expected a rethrow";
    } catch (const std::runtime_error& e) {
      caught = e.what();
    }
    EXPECT_EQ(caught, "chunk 0") << "rep " << rep;
  }
}

TEST(ParallelForTest, EveryFailingShardCountsInShardErrors) {
  // The winner is deterministic, but every losing shard still increments
  // parallel.shard_errors — the observability contract for faults that were
  // absorbed rather than rethrown.
  Counter& errors = MetricsRegistry::Global().counter("parallel.shard_errors");
  const int64_t before = errors.Value();
  std::atomic<int64_t> thrown{0};
  try {
    ParallelFor(
        100000,
        [&](int64_t begin, int64_t) {
          if (begin % 1024 == 0) {
            thrown.fetch_add(1, std::memory_order_relaxed);
            throw std::runtime_error("chunk " + std::to_string(begin));
          }
        },
        /*min_chunk=*/64);
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error&) {
  }
  // Every shard that throws — pool shard, caller shard, or an inline run on
  // a single-core budget — is recorded, so the counter advance equals the
  // number of throws actually executed.
  EXPECT_EQ(errors.Value() - before, thrown.load());
  EXPECT_GE(thrown.load(), 1);
}

TEST(ParallelForTest, ParallelSumMatchesSequential) {
  const int64_t kN = 200000;
  std::vector<int64_t> values(kN);
  std::iota(values.begin(), values.end(), 1);
  std::atomic<int64_t> sum{0};
  ParallelFor(kN, [&](int64_t begin, int64_t end) {
    int64_t local = 0;
    for (int64_t i = begin; i < end; ++i) local += values[static_cast<size_t>(i)];
    sum += local;
  });
  EXPECT_EQ(sum.load(), kN * (kN + 1) / 2);
}

}  // namespace
}  // namespace crashsim
