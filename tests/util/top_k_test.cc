#include "util/top_k.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace crashsim {
namespace {

TEST(TopKTest, KeepsLargestScores) {
  TopK<int> top(3);
  for (int i = 0; i < 10; ++i) top.Offer(static_cast<double>(i), i);
  const auto sorted = top.Sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].second, 9);
  EXPECT_EQ(sorted[1].second, 8);
  EXPECT_EQ(sorted[2].second, 7);
}

TEST(TopKTest, FewerThanKItems) {
  TopK<int> top(5);
  top.Offer(1.0, 10);
  top.Offer(2.0, 20);
  const auto sorted = top.Sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].second, 20);
}

TEST(TopKTest, ZeroKKeepsNothing) {
  TopK<int> top(0);
  top.Offer(5.0, 1);
  EXPECT_EQ(top.size(), 0u);
  EXPECT_TRUE(top.Sorted().empty());
}

TEST(TopKTest, TiesBreakTowardSmallerItem) {
  TopK<int> top(2);
  top.Offer(1.0, 3);
  top.Offer(1.0, 1);
  top.Offer(1.0, 2);
  const auto sorted = top.Sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].second, 1);
  EXPECT_EQ(sorted[1].second, 2);
}

TEST(TopKTest, MatchesFullSortOnRandomInput) {
  Rng rng(55);
  std::vector<std::pair<double, int>> all;
  TopK<int> top(10);
  for (int i = 0; i < 1000; ++i) {
    const double score = rng.NextDouble();
    all.emplace_back(score, i);
    top.Offer(score, i);
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  const auto sorted = top.Sorted();
  ASSERT_EQ(sorted.size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(sorted[i].second, all[i].second) << "rank " << i;
    EXPECT_DOUBLE_EQ(sorted[i].first, all[i].first);
  }
}

}  // namespace
}  // namespace crashsim
