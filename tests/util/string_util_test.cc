#include "util/string_util.h"

#include <gtest/gtest.h>

namespace crashsim {
namespace {

TEST(SplitTest, BasicSplit) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, EmptyFieldsPreserved) {
  const auto parts = Split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(SplitTest, NoDelimiter) {
  const auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitWhitespaceTest, CollapsesRuns) {
  const auto parts = SplitWhitespace("  1\t\t2  3 \n");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "1");
  EXPECT_EQ(parts[1], "2");
  EXPECT_EQ(parts[2], "3");
}

TEST(SplitWhitespaceTest, EmptyAndAllSpace) {
  EXPECT_TRUE(SplitWhitespace("").empty());
  EXPECT_TRUE(SplitWhitespace("   \t ").empty());
}

TEST(TrimTest, TrimsBothEnds) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-flag", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("a", "ab"));
}

TEST(ParseInt64Test, ValidInputs) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_TRUE(ParseInt64("  13  ", &v));
  EXPECT_EQ(v, 13);
}

TEST(ParseInt64Test, RejectsGarbage) {
  int64_t v = 0;
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("x12", &v));
  EXPECT_FALSE(ParseInt64("1 2", &v));
  EXPECT_FALSE(ParseInt64("99999999999999999999999", &v));
}

TEST(ParseDoubleTest, ValidInputs) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("0.025", &v));
  EXPECT_DOUBLE_EQ(v, 0.025);
  EXPECT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  double v = 0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("1.2.3", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.3f", 0.5), "0.500");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(WithThousandsTest, GroupsDigits) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(12345678), "12,345,678");
  EXPECT_EQ(WithThousands(-1234), "-1,234");
}

}  // namespace
}  // namespace crashsim
