#include "util/flags.h"

#include <vector>

#include <gtest/gtest.h>

namespace crashsim {
namespace {

// Builds a mutable argv from string literals.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (auto& s : storage_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

FlagSet MakeFlags() {
  FlagSet flags;
  flags.DefineInt("reps", 20, "repetitions");
  flags.DefineDouble("eps", 0.025, "epsilon");
  flags.DefineString("dataset", "as733", "dataset name");
  flags.DefineBool("verbose", false, "verbosity");
  return flags;
}

TEST(FlagsTest, DefaultsApplyWithoutArgs) {
  FlagSet flags = MakeFlags();
  Argv args({"prog"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()));
  EXPECT_EQ(flags.GetInt("reps"), 20);
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps"), 0.025);
  EXPECT_EQ(flags.GetString("dataset"), "as733");
  EXPECT_FALSE(flags.GetBool("verbose"));
}

TEST(FlagsTest, EqualsForm) {
  FlagSet flags = MakeFlags();
  Argv args({"prog", "--reps=5", "--eps=0.1", "--dataset=hepth"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()));
  EXPECT_EQ(flags.GetInt("reps"), 5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps"), 0.1);
  EXPECT_EQ(flags.GetString("dataset"), "hepth");
}

TEST(FlagsTest, SpaceForm) {
  FlagSet flags = MakeFlags();
  Argv args({"prog", "--reps", "7"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()));
  EXPECT_EQ(flags.GetInt("reps"), 7);
}

TEST(FlagsTest, BareBoolEnables) {
  FlagSet flags = MakeFlags();
  Argv args({"prog", "--verbose"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()));
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagsTest, UnknownFlagFails) {
  FlagSet flags = MakeFlags();
  Argv args({"prog", "--nope=1"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()));
}

TEST(FlagsTest, BadIntValueFails) {
  FlagSet flags = MakeFlags();
  Argv args({"prog", "--reps=abc"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()));
}

TEST(FlagsTest, PositionalArgsCollected) {
  FlagSet flags = MakeFlags();
  Argv args({"prog", "one", "--reps=3", "two"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()));
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "one");
  EXPECT_EQ(flags.positional()[1], "two");
}

TEST(FlagsTest, HelpReturnsFalse) {
  FlagSet flags = MakeFlags();
  Argv args({"prog", "--help"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()));
}

TEST(FlagsTest, UsageListsFlags) {
  FlagSet flags = MakeFlags();
  const std::string usage = flags.Usage("prog");
  EXPECT_NE(usage.find("--reps"), std::string::npos);
  EXPECT_NE(usage.find("--dataset"), std::string::npos);
  EXPECT_NE(usage.find("default: 20"), std::string::npos);
}

TEST(FlagsTest, IntInRangeAcceptsDomainValues) {
  FlagSet flags;
  flags.DefineIntInRange("timeout_ms", 0, 0, 86400000, "query deadline");
  Argv args({"prog", "--timeout_ms=250"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()));
  EXPECT_EQ(flags.GetInt("timeout_ms"), 250);
}

TEST(FlagsTest, IntInRangeAcceptsBoundaryValues) {
  FlagSet flags;
  flags.DefineIntInRange("threads", 4, 1, 256, "worker threads");
  {
    Argv args({"prog", "--threads=1"});
    ASSERT_TRUE(flags.Parse(args.argc(), args.argv()));
    EXPECT_EQ(flags.GetInt("threads"), 1);
  }
  {
    Argv args({"prog", "--threads=256"});
    ASSERT_TRUE(flags.Parse(args.argc(), args.argv()));
    EXPECT_EQ(flags.GetInt("threads"), 256);
  }
}

TEST(FlagsTest, IntInRangeRejectsOutOfDomainValues) {
  FlagSet flags;
  flags.DefineIntInRange("timeout_ms", 0, 0, 86400000, "query deadline");
  {
    Argv args({"prog", "--timeout_ms=-5"});
    EXPECT_FALSE(flags.Parse(args.argc(), args.argv()));
  }
  {
    Argv args({"prog", "--timeout_ms=86400001"});
    EXPECT_FALSE(flags.Parse(args.argc(), args.argv()));
  }
}

TEST(FlagsTest, IntInRangeStillRejectsGarbage) {
  FlagSet flags;
  flags.DefineIntInRange("timeout_ms", 0, 0, 1000, "query deadline");
  Argv args({"prog", "--timeout_ms=soon"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()));
}

TEST(FlagsTest, UsageShowsRange) {
  FlagSet flags;
  flags.DefineIntInRange("timeout_ms", 0, 0, 1000, "query deadline");
  const std::string usage = flags.Usage("prog");
  EXPECT_NE(usage.find("range: [0, 1000]"), std::string::npos);
}

}  // namespace
}  // namespace crashsim
