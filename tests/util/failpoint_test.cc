#include "util/failpoint.h"

#include <algorithm>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/status.h"

namespace crashsim {
namespace {

// Every test arms through FailpointScope so a failure cannot leak armed
// sites into later tests (the registry is process-global).

TEST(FailpointTest, DisabledSiteIsOk) {
  ASSERT_FALSE(FailpointsEnabled());
  EXPECT_TRUE(CRASHSIM_FAILPOINT("rev_reach.build").ok());
}

TEST(FailpointTest, EnabledButUnarmedSiteIsOk) {
  FailpointScope scope(42);
  EXPECT_TRUE(FailpointsEnabled());
  EXPECT_TRUE(CRASHSIM_FAILPOINT("rev_reach.build").ok());
}

TEST(FailpointTest, ScopeDisablesOnExit) {
  {
    FailpointScope scope(42);
    ASSERT_TRUE(FailpointsEnabled());
  }
  EXPECT_FALSE(FailpointsEnabled());
}

TEST(FailpointTest, ConfigureRejectsUnknownName) {
  FailpointScope scope(42);
  const Status s = ConfigureFailpoint("no.such.site", FailpointSpec{});
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(FailpointTest, ConfigureRejectsOutOfDomainSpec) {
  FailpointScope scope(42);
  FailpointSpec bad_prob;
  bad_prob.probability = 1.5;
  EXPECT_EQ(ConfigureFailpoint("rev_reach.build", bad_prob).code(),
            StatusCode::kInvalidArgument);
  FailpointSpec bad_latency;
  bad_latency.latency_ms = -1;
  EXPECT_EQ(ConfigureFailpoint("rev_reach.build", bad_latency).code(),
            StatusCode::kInvalidArgument);
  FailpointSpec bad_fires;
  bad_fires.max_fires = -1;
  EXPECT_EQ(ConfigureFailpoint("rev_reach.build", bad_fires).code(),
            StatusCode::kInvalidArgument);
}

TEST(FailpointTest, ConfigureRequiresEnable) {
  ASSERT_FALSE(FailpointsEnabled());
  EXPECT_EQ(ConfigureFailpoint("rev_reach.build", FailpointSpec{}).code(),
            StatusCode::kInvalidArgument);
}

TEST(FailpointTest, ArmedErrorFiresWithConfiguredCode) {
  FailpointScope scope(42);
  FailpointSpec spec;
  spec.action = FailpointAction::kError;
  spec.code = StatusCode::kUnavailable;
  ASSERT_TRUE(ConfigureFailpoint("rev_reach.build", spec).ok());
  const Status s = CRASHSIM_FAILPOINT("rev_reach.build");
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_NE(s.message().find("rev_reach.build"), std::string::npos);
  EXPECT_EQ(FailpointHits("rev_reach.build"), 1);
  EXPECT_EQ(FailpointFires("rev_reach.build"), 1);
}

TEST(FailpointTest, MaxFiresCapsTheFault) {
  FailpointScope scope(42);
  FailpointSpec spec;
  spec.max_fires = 2;
  ASSERT_TRUE(ConfigureFailpoint("rev_reach.build", spec).ok());
  int errors = 0;
  for (int i = 0; i < 10; ++i) {
    if (!CRASHSIM_FAILPOINT("rev_reach.build").ok()) ++errors;
  }
  EXPECT_EQ(errors, 2);
  EXPECT_EQ(FailpointHits("rev_reach.build"), 10);
  EXPECT_EQ(FailpointFires("rev_reach.build"), 2);
}

TEST(FailpointTest, BadAllocActionThrows) {
  FailpointScope scope(42);
  FailpointSpec spec;
  spec.action = FailpointAction::kBadAlloc;
  ASSERT_TRUE(ConfigureFailpoint("rev_reach.alloc", spec).ok());
  EXPECT_THROW((void)CRASHSIM_FAILPOINT("rev_reach.alloc"), std::bad_alloc);
}

TEST(FailpointTest, ThrowMacroSurfacesStatusException) {
  FailpointScope scope(42);
  FailpointSpec spec;
  spec.code = StatusCode::kUnavailable;
  ASSERT_TRUE(ConfigureFailpoint("parallel.worker", spec).ok());
  try {
    CRASHSIM_FAILPOINT_THROW("parallel.worker");
    FAIL() << "expected StatusException";
  } catch (const StatusException& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kUnavailable);
  }
}

// The chaos tier's replay property: the per-site fire pattern is a pure
// function of (seed, name, hit index).
TEST(FailpointTest, FirePatternIsSeedDeterministic) {
  const auto pattern = [](uint64_t seed) {
    FailpointScope scope(seed);
    FailpointSpec spec;
    spec.probability = 0.3;
    EXPECT_TRUE(ConfigureFailpoint("crashsim.trial_block", spec).ok());
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) {
      fires.push_back(!CRASHSIM_FAILPOINT("crashsim.trial_block").ok());
    }
    return fires;
  };
  const std::vector<bool> a = pattern(7);
  const std::vector<bool> b = pattern(7);
  const std::vector<bool> c = pattern(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  const int64_t fired = std::count(a.begin(), a.end(), true);
  // 200 Bernoulli(0.3) hits: far from 0 and from 200 with overwhelming
  // probability, and exact under the determinism above.
  EXPECT_GT(fired, 20);
  EXPECT_LT(fired, 140);
}

TEST(FailpointTest, DistinctSitesFireIndependently) {
  FailpointScope scope(42);
  FailpointSpec spec;
  spec.probability = 0.5;
  ASSERT_TRUE(ConfigureFailpoint("crashsim.trial_block", spec).ok());
  ASSERT_TRUE(ConfigureFailpoint("probesim.trial_block", spec).ok());
  std::vector<bool> a, b;
  for (int i = 0; i < 64; ++i) {
    a.push_back(!CRASHSIM_FAILPOINT("crashsim.trial_block").ok());
    b.push_back(!CRASHSIM_FAILPOINT("probesim.trial_block").ok());
  }
  // The name is hashed into the decision stream, so two sites armed the
  // same way must not fire in lockstep.
  EXPECT_NE(a, b);
}

TEST(FailpointTest, CatalogIsSortedAndComplete) {
  const std::vector<std::string_view>& catalog = FailpointCatalog();
  ASSERT_FALSE(catalog.empty());
  EXPECT_TRUE(std::is_sorted(catalog.begin(), catalog.end()));
  // Every catalog name must be armable.
  FailpointScope scope(42);
  for (const std::string_view name : catalog) {
    EXPECT_TRUE(ConfigureFailpoint(name, FailpointSpec{}).ok()) << name;
  }
}

TEST(FailpointTest, ZeroProbabilityNeverFires) {
  FailpointScope scope(42);
  FailpointSpec spec;
  spec.probability = 0.0;
  ASSERT_TRUE(ConfigureFailpoint("rev_reach.build", spec).ok());
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(CRASHSIM_FAILPOINT("rev_reach.build").ok());
  }
  EXPECT_EQ(FailpointFires("rev_reach.build"), 0);
  EXPECT_EQ(FailpointHits("rev_reach.build"), 50);
}

}  // namespace
}  // namespace crashsim
