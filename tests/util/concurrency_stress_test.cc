// Concurrency stress suite for the parallel core, sized so a ThreadSanitizer
// build (tools/run_sanitized_tests.sh thread) finishes in tier-1 time. These
// tests earn their keep under TSan — on a plain build they are quick sanity
// checks; instrumented, they are the race detectors for the three places the
// engine shares state across threads:
//
//   1. ParallelFor's persistent pool (nested calls, exception unwinding,
//      concurrent independent callers),
//   2. the sharded metrics registry (concurrent create + increment + read),
//   3. QueryContext's deadline/cancel flags racing a running CrashSim query
//      that writes QueryStats.
//
// std::thread is used directly here on purpose: the point is to attack the
// library from outside ParallelFor's own discipline. (The invariant linter
// confines thread primitives in src/, not tests/.)

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/crashsim.h"
#include "core/query_context.h"
#include "core/query_stats.h"
#include "graph/generators.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/trace.h"

namespace crashsim {
namespace {

TEST(ConcurrencyStressTest, ConcurrentIndependentParallelFors) {
  // Several caller threads share the one persistent pool; each runs its own
  // ParallelFor over a private accumulator array. No iteration may be lost
  // or doubled, whichever worker executes it.
  constexpr int kCallers = 4;
  constexpr int64_t kN = 20000;
  std::vector<std::vector<int64_t>> sums(
      kCallers, std::vector<int64_t>(static_cast<size_t>(kN), 0));
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([t, &sums] {
      for (int round = 0; round < 8; ++round) {
        ParallelFor(
            kN,
            [&sums, t](int64_t begin, int64_t end) {
              for (int64_t i = begin; i < end; ++i) {
                sums[static_cast<size_t>(t)][static_cast<size_t>(i)] += 1;
              }
            },
            /*min_chunk=*/256, /*max_threads=*/4);
      }
    });
  }
  for (std::thread& th : callers) th.join();
  for (int t = 0; t < kCallers; ++t) {
    for (int64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(sums[static_cast<size_t>(t)][static_cast<size_t>(i)], 8)
          << "caller " << t << " index " << i;
    }
  }
}

TEST(ConcurrencyStressTest, NestedParallelForRunsInlineWithoutRaces) {
  // Inner ParallelFor calls from pool workers run inline by contract; the
  // combination must still touch every (outer, inner) cell exactly once.
  constexpr int64_t kOuter = 64;
  constexpr int64_t kInner = 512;
  std::vector<std::atomic<int32_t>> cells(
      static_cast<size_t>(kOuter * kInner));
  ParallelFor(
      kOuter,
      [&cells](int64_t begin, int64_t end) {
        for (int64_t o = begin; o < end; ++o) {
          ParallelFor(
              kInner,
              [&cells, o](int64_t ib, int64_t ie) {
                for (int64_t i = ib; i < ie; ++i) {
                  cells[static_cast<size_t>(o * kInner + i)].fetch_add(
                      1, std::memory_order_relaxed);
                }
              },
              /*min_chunk=*/64, /*max_threads=*/2);
        }
      },
      /*min_chunk=*/1, /*max_threads=*/4);
  for (const auto& cell : cells) {
    ASSERT_EQ(cell.load(std::memory_order_relaxed), 1);
  }
}

TEST(ConcurrencyStressTest, ExceptionMixUnderConcurrentCallers) {
  // Throwing chunks unwind while sibling chunks keep running; concurrent
  // caller threads mix throwing and clean ParallelFors on the shared pool.
  // Every call must either complete or rethrow the chunk's exception — and
  // the pool must stay usable afterwards.
  constexpr int kCallers = 4;
  std::atomic<int> caught{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([t, &caught] {
      for (int round = 0; round < 10; ++round) {
        const bool throwing = (t + round) % 2 == 0;
        try {
          ParallelFor(
              4096,
              [throwing](int64_t begin, int64_t end) {
                volatile int64_t sink = 0;
                for (int64_t i = begin; i < end; ++i) sink = sink + i;
                if (throwing && begin == 0) {
                  throw std::runtime_error("stress");
                }
              },
              /*min_chunk=*/128, /*max_threads=*/4);
          ASSERT_FALSE(throwing);
        } catch (const std::runtime_error& e) {
          ASSERT_TRUE(throwing);
          ASSERT_STREQ(e.what(), "stress");
          caught.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : callers) th.join();
  EXPECT_EQ(caught.load(), kCallers * 10 / 2);
  // Pool still healthy after all that unwinding.
  std::atomic<int64_t> total{0};
  ParallelFor(1000, [&total](int64_t begin, int64_t end) {
    total.fetch_add(end - begin, std::memory_order_relaxed);
  }, /*min_chunk=*/64, /*max_threads=*/4);
  EXPECT_EQ(total.load(), 1000);
}

TEST(ConcurrencyStressTest, MetricsRegistryConcurrentMutation) {
  // Concurrent lookup-or-create on overlapping names, wait-free increments,
  // and snapshot/ToString readers all hammer the global registry at once.
  MetricsRegistry& registry = MetricsRegistry::Global();
  constexpr int kThreads = 6;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &registry] {
      Counter& mine = registry.counter(
          "stress.counter." + std::to_string(t % 3));
      Gauge& gauge = registry.gauge("stress.gauge");
      FixedHistogram& hist = registry.histogram(
          "stress.hist", ExponentialBuckets(1, 4.0, 6));
      for (int i = 0; i < kOpsPerThread; ++i) {
        mine.Add(1);
        gauge.Set(i);
        hist.Record(i % 1000);
        if (i % 256 == 0) {
          // Re-resolution must return the same stable reference.
          Counter& again = registry.counter(
              "stress.counter." + std::to_string(t % 3));
          ASSERT_EQ(&again, &mine);
        }
      }
    });
  }
  std::atomic<bool> stop{false};
  threads.emplace_back([&registry, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)registry.SnapshotCounters();
      (void)registry.ToString();
    }
  });
  for (int t = 0; t < kThreads; ++t) threads[static_cast<size_t>(t)].join();
  stop.store(true, std::memory_order_relaxed);
  threads.back().join();

  int64_t total = 0;
  for (int name = 0; name < 3; ++name) {
    total += registry.counter("stress.counter." + std::to_string(name))
                 .Value();
  }
  EXPECT_EQ(total, int64_t{kThreads} * kOpsPerThread);
  EXPECT_EQ(registry.histogram("stress.hist", {}).TotalCount(),
            int64_t{kThreads} * kOpsPerThread);
}

TEST(ConcurrencyStressTest, DeadlineFiringRacesWorkerStatsWrites) {
  // A monitor thread polls progress and the deadline fires mid-query while
  // the engine (possibly on several pool threads) is working and writing
  // QueryStats through the context. The contract: stats are written only
  // from the querying thread after parallel regions join, progress counters
  // are atomics — so TSan must stay silent and the partial result must obey
  // the anytime semantics.
  Rng rng(5);
  const Graph g = ErdosRenyi(300, 1800, false, &rng);
  CrashSimOptions opt;
  opt.mc.c = 0.6;
  opt.mc.trials_override = 200000;  // far more than a few ms allows
  opt.mc.seed = 11;
  opt.num_threads = 4;
  CrashSim algo(opt);
  algo.Bind(&g);

  for (int round = 0; round < 4; ++round) {
    QueryContext ctx(std::chrono::milliseconds(20 + 10 * round));
    QueryStats stats;
    ctx.set_stats(&stats);
    std::atomic<bool> done{false};
    int64_t observed_progress = 0;
    std::thread monitor([&ctx, &done, &observed_progress] {
      while (!done.load(std::memory_order_acquire)) {
        observed_progress = ctx.trials_done();
        std::this_thread::yield();
      }
    });
    const PartialResult result = algo.SingleSource(7, &ctx);
    done.store(true, std::memory_order_release);
    monitor.join();
    ASSERT_TRUE(result.status.ok() ||
                result.status.code() == StatusCode::kDeadlineExceeded);
    EXPECT_LE(observed_progress, result.trials_target);
    EXPECT_EQ(stats.trials_run, result.trials_done);
  }
}

TEST(ConcurrencyStressTest, CancellationRacesRunningQuery) {
  // Cancel() lands from another thread at a random point in the query. The
  // query must return kCancelled (or OK if it won the race) with coherent
  // partial scores, and the canceller must never trip a race.
  Rng rng(6);
  const Graph g = ErdosRenyi(250, 1500, false, &rng);
  CrashSimOptions opt;
  opt.mc.c = 0.6;
  opt.mc.trials_override = 100000;
  opt.mc.seed = 23;
  opt.num_threads = 4;
  CrashSim algo(opt);
  algo.Bind(&g);

  for (int round = 0; round < 4; ++round) {
    QueryContext ctx;
    QueryStats stats;
    ctx.set_stats(&stats);
    std::thread canceller([&ctx, round] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1 + round * 5));
      ctx.Cancel();
    });
    const PartialResult result = algo.SingleSource(3, &ctx);
    canceller.join();
    ASSERT_TRUE(result.status.ok() ||
                result.status.code() == StatusCode::kCancelled)
        << result.status.ToString();
    if (!result.status.ok()) {
      EXPECT_LT(result.trials_done, result.trials_target);
    }
    EXPECT_EQ(stats.trials_run, result.trials_done);
    EXPECT_TRUE(ctx.cancelled());
  }
}

TEST(ConcurrencyStressTest, ParallelQueriesShareEngineReadOnly) {
  // Distinct CrashSim instances bound to the same immutable Graph run
  // queries from several threads at once: the graph and the pool are shared,
  // everything mutable is per-instance, so results must match a sequential
  // run of the same seeds.
  Rng rng(8);
  const Graph g = ErdosRenyi(200, 1200, false, &rng);
  auto make_options = [](int thread_idx) {
    CrashSimOptions opt;
    opt.mc.c = 0.6;
    opt.mc.trials_override = 800;
    opt.mc.seed = 100 + static_cast<uint64_t>(thread_idx);
    opt.num_threads = 2;
    return opt;
  };

  constexpr int kQueryThreads = 3;
  std::vector<std::vector<double>> concurrent(kQueryThreads);
  std::vector<std::thread> threads;
  threads.reserve(kQueryThreads);
  for (int t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back([t, &g, &concurrent, &make_options] {
      CrashSim algo(make_options(t));
      algo.Bind(&g);
      const PartialResult r =
          algo.SingleSource(static_cast<NodeId>(t), nullptr);
      concurrent[static_cast<size_t>(t)] = r.scores;
    });
  }
  for (std::thread& th : threads) th.join();

  for (int t = 0; t < kQueryThreads; ++t) {
    CrashSim algo(make_options(t));
    algo.Bind(&g);
    const PartialResult r = algo.SingleSource(static_cast<NodeId>(t), nullptr);
    EXPECT_EQ(concurrent[static_cast<size_t>(t)], r.scores)
        << "thread " << t;
  }
}

TEST(ConcurrencyStressTest, TracingRecordersRaceStartStopToggles) {
  // Recorder threads hammer the per-thread ring buffers (spans + flow
  // events) while the main thread flips StartTracing/StopTracing, which
  // concurrently resets every registered buffer. Under TSan this exercises
  // the single-writer/many-reset protocol: size_ is the only cross-thread
  // handoff, published with release stores and reread with acquire loads.
  constexpr int kRecorders = 4;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(kRecorders);
  for (int t = 0; t < kRecorders; ++t) {
    threads.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        TRACE_SPAN("stress.outer");
        TraceFlowOut(TraceEnabled() ? NewTraceFlowId() : 0);
        {
          TRACE_SPAN("stress.inner");
        }
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    StartTracing();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    StopTracing();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : threads) th.join();

  // Writers have joined, so exporting is safe and must stay balanced even
  // though mid-span resets left torn begin/end pairs in the buffers.
  const std::string json = ExportChromeTrace();
  EXPECT_FALSE(json.empty());
  const std::string table = ExportTraceAggregateTable();
  EXPECT_FALSE(table.empty());
  StartTracing();  // leave no stale events behind for later tests
  StopTracing();
}

}  // namespace
}  // namespace crashsim
