#include "util/status.h"

#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace crashsim {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s, OkStatus());
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("c out of range").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(DeadlineExceededError("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(CancelledError("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
  const Status s = InvalidArgumentError("c out of range");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "c out of range");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: c out of range");
}

TEST(StatusTest, WithContextChainsMessages) {
  const Status inner = InvalidArgumentError("line 3: negative node id -7");
  const Status outer = inner.WithContext("load graph.txt");
  EXPECT_EQ(outer.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(outer.message(), "load graph.txt: line 3: negative node id -7");
  // OK statuses pass through unchanged.
  EXPECT_TRUE(OkStatus().WithContext("anything").ok());
}

TEST(StatusTest, StreamInsertionUsesToString) {
  std::ostringstream os;
  os << NotFoundError("no such node");
  EXPECT_EQ(os.str(), "NOT_FOUND: no such node");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, SupportsMoveOnlyTypes) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

TEST(StatusOrTest, ArrowOperatorReachesMembers) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

Status FailsWhen(bool fail) {
  RETURN_IF_ERROR(fail ? InvalidArgumentError("inner failure") : OkStatus());
  return OkStatus();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(FailsWhen(false).ok());
  const Status s = FailsWhen(true);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "inner failure");
}

StatusOr<int> Doubled(StatusOr<int> in) {
  ASSIGN_OR_RETURN(const int v, std::move(in));
  return 2 * v;
}

TEST(StatusMacroTest, AssignOrReturnUnwrapsOrPropagates) {
  const StatusOr<int> ok = Doubled(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  const StatusOr<int> err = Doubled(DataLossError("truncated"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace crashsim
