#include "util/event_log.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>  // lint:allow(thread-primitives): test drives the MPMC queue and EventLog from raw threads on purpose
#include <vector>

#include "gtest/gtest.h"

namespace crashsim {
namespace {

using event_log_internal::BoundedQueue;

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(EventBuilderTest, EmitsSchemaTimestampAndTypedFields) {
  const std::string line = EventBuilder("unit_test")
                               .Str("name", "x")
                               .Int("count", -3)
                               .UInt("id", 18446744073709551615ull)
                               .Double("ratio", 0.5)
                               .Bool("flag", true)
                               .Raw("nested", "{\"a\": 1}")
                               .Finish();
  EXPECT_EQ(line.find("{\"schema\": \"crashsim.event.v1\""), 0u);
  EXPECT_NE(line.find("\"ts_unix_ms\": "), std::string::npos);
  EXPECT_NE(line.find("\"event\": \"unit_test\""), std::string::npos);
  EXPECT_NE(line.find("\"name\": \"x\""), std::string::npos);
  EXPECT_NE(line.find("\"count\": -3"), std::string::npos);
  EXPECT_NE(line.find("\"id\": 18446744073709551615"), std::string::npos);
  EXPECT_NE(line.find("\"ratio\": 0.5"), std::string::npos);
  EXPECT_NE(line.find("\"flag\": true"), std::string::npos);
  EXPECT_NE(line.find("\"nested\": {\"a\": 1}"), std::string::npos);
  EXPECT_EQ(line.back(), '}');
}

TEST(EventBuilderTest, EscapesStringsAndRejectsNonFiniteDoubles) {
  const std::string line = EventBuilder("esc")
                               .Str("s", "a\"b\\c\nd\te")
                               .Double("inf", 1.0 / 0.0)
                               .Finish();
  EXPECT_NE(line.find("\"s\": \"a\\\"b\\\\c\\nd\\te\""), std::string::npos);
  EXPECT_NE(line.find("\"inf\": null"), std::string::npos);
}

TEST(BoundedQueueTest, RoundsCapacityUpToPowerOfTwo) {
  BoundedQueue q(5);
  EXPECT_EQ(q.capacity(), 8u);
}

TEST(BoundedQueueTest, FifoUntilFullThenRejects) {
  BoundedQueue q(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.TryPush(std::to_string(i)));
  }
  EXPECT_FALSE(q.TryPush("overflow"));
  std::string out;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, std::to_string(i));
  }
  EXPECT_FALSE(q.TryPop(&out));
}

TEST(BoundedQueueTest, SlotsAreReusableAcrossManyWraps) {
  BoundedQueue q(2);
  std::string out;
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(q.TryPush(std::to_string(round)));
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, std::to_string(round));
  }
}

TEST(BoundedQueueTest, ConcurrentProducersLoseNothingBelowCapacity) {
  BoundedQueue q(1024);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;  // 800 < 1024: no drops expected
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&q, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(q.TryPush(std::to_string(t * kPerThread + i)));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  std::vector<bool> seen(kThreads * kPerThread, false);
  std::string out;
  int popped = 0;
  while (q.TryPop(&out)) {
    const int value = std::stoi(out);
    ASSERT_FALSE(seen[static_cast<size_t>(value)]) << "duplicate " << value;
    seen[static_cast<size_t>(value)] = true;
    ++popped;
  }
  EXPECT_EQ(popped, kThreads * kPerThread);
}

TEST(EventLogTest, WritesOneJsonLinePerEvent) {
  const std::string path = TempPath("event_log_basic.jsonl");
  std::remove(path.c_str());
  {
    EventLog::Options options;
    options.path = path;
    EventLog log(options);
    ASSERT_TRUE(log.ok());
    log.Log(EventBuilder("first").Int("n", 1).Finish());
    log.Log(EventBuilder("second").Int("n", 2).Finish());
    log.Flush();
  }
  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"event\": \"first\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"event\": \"second\""), std::string::npos);
}

TEST(EventLogTest, DestructorDrainsPendingLines) {
  const std::string path = TempPath("event_log_drain.jsonl");
  std::remove(path.c_str());
  {
    EventLog::Options options;
    options.path = path;
    EventLog log(options);
    for (int i = 0; i < 100; ++i) {
      log.Log(EventBuilder("tick").Int("i", i).Finish());
    }
    // No Flush: the destructor must drain everything already enqueued.
  }
  EXPECT_EQ(ReadLines(path).size(), 100u);
}

TEST(EventLogTest, AppendsAcrossInstances) {
  const std::string path = TempPath("event_log_append.jsonl");
  std::remove(path.c_str());
  for (int run = 0; run < 2; ++run) {
    EventLog::Options options;
    options.path = path;
    EventLog log(options);
    log.Log(EventBuilder("run").Int("run", run).Finish());
  }
  EXPECT_EQ(ReadLines(path).size(), 2u);
}

TEST(EventLogTest, ConcurrentLoggersAllLand) {
  const std::string path = TempPath("event_log_mt.jsonl");
  std::remove(path.c_str());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  {
    EventLog::Options options;
    options.path = path;
    options.queue_capacity = 4096;  // larger than the total: no drops
    EventLog log(options);
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&log, t] {
        for (int i = 0; i < kPerThread; ++i) {
          log.Log(EventBuilder("mt").Int("t", t).Int("i", i).Finish());
        }
      });
    }
    for (std::thread& t : workers) t.join();
    log.Flush();
    EXPECT_EQ(log.dropped(), 0);
  }
  EXPECT_EQ(ReadLines(path).size(),
            static_cast<size_t>(kThreads * kPerThread));
}

TEST(EventLogTest, OverflowDropsAndCountsInsteadOfBlocking) {
  const std::string path = TempPath("event_log_drop.jsonl");
  std::remove(path.c_str());
  EventLog::Options options;
  options.path = path;
  options.queue_capacity = 4;
  EventLog log(options);
  // Far more lines than the queue can hold, pushed faster than one writer
  // can drain: some must drop, none may block, and the tally must add up.
  constexpr int kLines = 10000;
  for (int i = 0; i < kLines; ++i) {
    log.Log(EventBuilder("burst").Int("i", i).Finish());
  }
  log.Flush();
  const int64_t dropped = log.dropped();
  EXPECT_GT(dropped, 0);
  EXPECT_LT(dropped, kLines);  // the writer kept up with at least some
  log.Flush();
  EXPECT_EQ(static_cast<int64_t>(ReadLines(path).size()) + dropped, kLines);
}

TEST(EventLogTest, UnopenablePathFallsBackToStderr) {
  EventLog::Options options;
  options.path = "/nonexistent-dir-for-sure/event.log";
  EventLog log(options);
  EXPECT_FALSE(log.ok());
  // Still usable: the line goes to stderr rather than crashing.
  log.Log(EventBuilder("fallback").Finish());
  log.Flush();
}

}  // namespace
}  // namespace crashsim
