#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace crashsim {
namespace {

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.Variance(), 0.0);
}

TEST(OnlineStatsTest, SingleValue) {
  OnlineStats s;
  s.Add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(OnlineStatsTest, KnownMeanAndVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32 -> 32/7.
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.Stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStatsTest, MergeMatchesSequential) {
  OnlineStats all;
  OnlineStats a;
  OnlineStats b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.Variance(), all.Variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStatsTest, MergeWithEmpty) {
  OnlineStats a;
  a.Add(1.0);
  OnlineStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(PercentileTest, InterpolatesLinearly) {
  const std::vector<double> sorted{0.0, 10.0};
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 0.25), 2.5);
}

TEST(PercentileTest, EmptyAndSingle) {
  EXPECT_EQ(PercentileSorted({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(PercentileSorted({3.0}, 0.99), 3.0);
}

TEST(PercentileNearestRankTest, KnownQuantilesOfHundredSamples) {
  std::vector<double> sorted;
  for (int i = 1; i <= 100; ++i) sorted.push_back(i);
  // Nearest rank = ceil(q * n), 1-based. p50 of 100 samples is the 50th
  // order statistic (sorted[49] == 50), not sorted[50] — the off-by-one the
  // old stress-report lambda had.
  EXPECT_DOUBLE_EQ(PercentileNearestRank(sorted, 0.50), 50.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(sorted, 0.95), 95.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(sorted, 0.99), 99.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(sorted, 0.999), 100.0);
}

TEST(PercentileNearestRankTest, NeverInterpolates) {
  const std::vector<double> sorted{1.0, 100.0};
  // ceil(0.5 * 2) = rank 1 -> the lower sample, never a blend of the two.
  EXPECT_DOUBLE_EQ(PercentileNearestRank(sorted, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(sorted, 0.51), 100.0);
}

TEST(PercentileNearestRankTest, SmallSamples) {
  EXPECT_DOUBLE_EQ(PercentileNearestRank({7.0}, 0.5), 7.0);
  const std::vector<double> five{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(PercentileNearestRank(five, 0.20), 10.0);  // ceil(1.0)=1
  EXPECT_DOUBLE_EQ(PercentileNearestRank(five, 0.21), 20.0);  // ceil(1.05)=2
  EXPECT_DOUBLE_EQ(PercentileNearestRank(five, 0.50), 30.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(five, 0.99), 50.0);
}

TEST(PercentileNearestRankTest, EmptyAndExtremes) {
  EXPECT_EQ(PercentileNearestRank({}, 0.5), 0.0);
  const std::vector<double> sorted{2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(PercentileNearestRank(sorted, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(sorted, -1.0), 2.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(sorted, 1.0), 6.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(sorted, 2.0), 6.0);
}

TEST(SummarizeTest, BasicSummary) {
  std::vector<double> values;
  for (int i = 100; i >= 1; --i) values.push_back(i);  // 1..100 reversed
  const SampleSummary s = Summarize(values);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
}

TEST(SummarizeTest, EmptyInput) {
  const SampleSummary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
}

TEST(SummarizeTest, ToStringMentionsFields) {
  const SampleSummary s = Summarize({1.0, 2.0, 3.0});
  const std::string text = ToString(s);
  EXPECT_NE(text.find("mean="), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);
}

}  // namespace
}  // namespace crashsim
