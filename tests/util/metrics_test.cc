#include "util/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace crashsim {
namespace {

TEST(CounterTest, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0);
  c.Add();
  c.Add(5);
  EXPECT_EQ(c.Value(), 6);
  c.Reset();
  EXPECT_EQ(c.Value(), 0);
}

TEST(CounterTest, ConcurrentAddsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetOverwrites) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Set(42);
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
}

TEST(FixedHistogramTest, BucketsByUpperBound) {
  FixedHistogram h({8, 64, 512});
  ASSERT_EQ(h.num_buckets(), 4);  // 3 bounds + overflow
  h.Record(1);
  h.Record(8);    // boundary lands in (..8]
  h.Record(9);    // first value of (8..64]
  h.Record(512);
  h.Record(100000);  // overflow
  EXPECT_EQ(h.BucketCount(0), 2);
  EXPECT_EQ(h.BucketCount(1), 1);
  EXPECT_EQ(h.BucketCount(2), 1);
  EXPECT_EQ(h.BucketCount(3), 1);
  EXPECT_EQ(h.TotalCount(), 5);
  EXPECT_EQ(h.Sum(), 1 + 8 + 9 + 512 + 100000);
  EXPECT_DOUBLE_EQ(h.Mean(), static_cast<double>(h.Sum()) / 5.0);
  EXPECT_FALSE(h.ToString().empty());
}

TEST(FixedHistogramTest, SnapshotIsCumulativeWithInfBucket) {
  FixedHistogram h({8, 64, 512});
  h.Record(1);
  h.Record(8);
  h.Record(9);
  h.Record(512);
  h.Record(100000);  // overflow -> only the +Inf bucket grows
  const FixedHistogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.bounds, (std::vector<int64_t>{8, 64, 512}));
  // One cumulative count per bound plus the implicit +Inf bucket.
  ASSERT_EQ(snap.cumulative.size(), snap.bounds.size() + 1);
  EXPECT_EQ(snap.cumulative, (std::vector<int64_t>{2, 3, 4, 5}));
  EXPECT_EQ(snap.total, 5);
  EXPECT_EQ(snap.total, snap.cumulative.back());
  EXPECT_EQ(snap.sum, 1 + 8 + 9 + 512 + 100000);
}

TEST(FixedHistogramTest, ExponentialBucketsShape) {
  const std::vector<int64_t> bounds = ExponentialBuckets(1, 4.0, 5);
  EXPECT_EQ(bounds, (std::vector<int64_t>{1, 4, 16, 64, 256}));
}

TEST(MetricsRegistryTest, SameNameReturnsSameMetric) {
  MetricsRegistry registry;
  Counter& a = registry.counter("test.counter");
  Counter& b = registry.counter("test.counter");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.Value(), 3);

  Gauge& g1 = registry.gauge("test.gauge");
  Gauge& g2 = registry.gauge("test.gauge");
  EXPECT_EQ(&g1, &g2);

  FixedHistogram& h1 = registry.histogram("test.hist", {10, 100});
  FixedHistogram& h2 = registry.histogram("test.hist", {999});
  EXPECT_EQ(&h1, &h2);  // bounds of the first registration win
  EXPECT_EQ(h2.bounds(), (std::vector<int64_t>{10, 100}));
}

TEST(MetricsRegistryTest, SnapshotsAreNameSorted) {
  MetricsRegistry registry;
  registry.counter("z.last").Add(1);
  registry.counter("a.first").Add(2);
  registry.gauge("mid.gauge").Set(9);
  const auto counters = registry.SnapshotCounters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].name, "a.first");
  EXPECT_EQ(counters[0].value, 2);
  EXPECT_EQ(counters[1].name, "z.last");
  EXPECT_EQ(counters[1].value, 1);
  const auto gauges = registry.SnapshotGauges();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_EQ(gauges[0].name, "mid.gauge");
  EXPECT_EQ(gauges[0].value, 9);
  EXPECT_FALSE(registry.ToString().empty());
}

TEST(MetricsRegistryTest, ResetCountersForTestZeroesCountersOnly) {
  MetricsRegistry registry;
  registry.counter("c").Add(5);
  registry.gauge("g").Set(5);
  registry.ResetCountersForTest();
  EXPECT_EQ(registry.counter("c").Value(), 0);
  EXPECT_EQ(registry.gauge("g").Value(), 5);
}

TEST(MetricsRegistryTest, GlobalIsStableAcrossCalls) {
  MetricsRegistry& a = MetricsRegistry::Global();
  MetricsRegistry& b = MetricsRegistry::Global();
  EXPECT_EQ(&a, &b);
}

TEST(MetricsRegistryTest, PrometheusExportFollowsTextFormat) {
  MetricsRegistry registry;
  registry.counter("queries.completed").Add(3);
  registry.gauge("pool.threads").Set(2);
  FixedHistogram& h = registry.histogram("query_ms", {1, 10});
  h.Record(1);
  h.Record(5);
  h.Record(500);
  const std::string text = registry.ExportPrometheusText();

  // Counters: crashsim_ prefix, sanitised name, _total suffix, TYPE line.
  EXPECT_NE(text.find("# TYPE crashsim_queries_completed_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("crashsim_queries_completed_total 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE crashsim_pool_threads gauge"),
            std::string::npos);
  EXPECT_NE(text.find("crashsim_pool_threads 2"), std::string::npos);

  // Histograms: cumulative buckets, closing +Inf, _sum and _count.
  EXPECT_NE(text.find("# TYPE crashsim_query_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("crashsim_query_ms_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("crashsim_query_ms_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("crashsim_query_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("crashsim_query_ms_sum 506"), std::string::npos);
  EXPECT_NE(text.find("crashsim_query_ms_count 3"), std::string::npos);
  // Exposition ends with a newline (required by the 0.0.4 text format).
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

}  // namespace
}  // namespace crashsim
