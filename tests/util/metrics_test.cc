#include "util/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace crashsim {
namespace {

TEST(CounterTest, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0);
  c.Add();
  c.Add(5);
  EXPECT_EQ(c.Value(), 6);
  c.Reset();
  EXPECT_EQ(c.Value(), 0);
}

TEST(CounterTest, ConcurrentAddsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetOverwrites) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Set(42);
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
}

TEST(FixedHistogramTest, BucketsByUpperBound) {
  FixedHistogram h({8, 64, 512});
  ASSERT_EQ(h.num_buckets(), 4);  // 3 bounds + overflow
  h.Record(1);
  h.Record(8);    // boundary lands in (..8]
  h.Record(9);    // first value of (8..64]
  h.Record(512);
  h.Record(100000);  // overflow
  EXPECT_EQ(h.BucketCount(0), 2);
  EXPECT_EQ(h.BucketCount(1), 1);
  EXPECT_EQ(h.BucketCount(2), 1);
  EXPECT_EQ(h.BucketCount(3), 1);
  EXPECT_EQ(h.TotalCount(), 5);
  EXPECT_EQ(h.Sum(), 1 + 8 + 9 + 512 + 100000);
  EXPECT_DOUBLE_EQ(h.Mean(), static_cast<double>(h.Sum()) / 5.0);
  EXPECT_FALSE(h.ToString().empty());
}

TEST(FixedHistogramTest, SnapshotIsCumulativeWithInfBucket) {
  FixedHistogram h({8, 64, 512});
  h.Record(1);
  h.Record(8);
  h.Record(9);
  h.Record(512);
  h.Record(100000);  // overflow -> only the +Inf bucket grows
  const FixedHistogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.bounds, (std::vector<int64_t>{8, 64, 512}));
  // One cumulative count per bound plus the implicit +Inf bucket.
  ASSERT_EQ(snap.cumulative.size(), snap.bounds.size() + 1);
  EXPECT_EQ(snap.cumulative, (std::vector<int64_t>{2, 3, 4, 5}));
  EXPECT_EQ(snap.total, 5);
  EXPECT_EQ(snap.total, snap.cumulative.back());
  EXPECT_EQ(snap.sum, 1 + 8 + 9 + 512 + 100000);
}

TEST(FixedHistogramTest, ExponentialBucketsShape) {
  const std::vector<int64_t> bounds = ExponentialBuckets(1, 4.0, 5);
  EXPECT_EQ(bounds, (std::vector<int64_t>{1, 4, 16, 64, 256}));
}

TEST(MetricsRegistryTest, SameNameReturnsSameMetric) {
  MetricsRegistry registry;
  Counter& a = registry.counter("test.counter");
  Counter& b = registry.counter("test.counter");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.Value(), 3);

  Gauge& g1 = registry.gauge("test.gauge");
  Gauge& g2 = registry.gauge("test.gauge");
  EXPECT_EQ(&g1, &g2);

  FixedHistogram& h1 = registry.histogram("test.hist", {10, 100});
  FixedHistogram& h2 = registry.histogram("test.hist", {999});
  EXPECT_EQ(&h1, &h2);  // bounds of the first registration win
  EXPECT_EQ(h2.bounds(), (std::vector<int64_t>{10, 100}));
}

TEST(MetricsRegistryTest, SnapshotsAreNameSorted) {
  MetricsRegistry registry;
  registry.counter("z.last").Add(1);
  registry.counter("a.first").Add(2);
  registry.gauge("mid.gauge").Set(9);
  const auto counters = registry.SnapshotCounters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].name, "a.first");
  EXPECT_EQ(counters[0].value, 2);
  EXPECT_EQ(counters[1].name, "z.last");
  EXPECT_EQ(counters[1].value, 1);
  const auto gauges = registry.SnapshotGauges();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_EQ(gauges[0].name, "mid.gauge");
  EXPECT_EQ(gauges[0].value, 9);
  EXPECT_FALSE(registry.ToString().empty());
}

TEST(MetricsRegistryTest, ResetCountersForTestZeroesCountersOnly) {
  MetricsRegistry registry;
  registry.counter("c").Add(5);
  registry.gauge("g").Set(5);
  registry.ResetCountersForTest();
  EXPECT_EQ(registry.counter("c").Value(), 0);
  EXPECT_EQ(registry.gauge("g").Value(), 5);
}

TEST(MetricsRegistryTest, GlobalIsStableAcrossCalls) {
  MetricsRegistry& a = MetricsRegistry::Global();
  MetricsRegistry& b = MetricsRegistry::Global();
  EXPECT_EQ(&a, &b);
}

TEST(MetricsRegistryTest, PrometheusExportFollowsTextFormat) {
  MetricsRegistry registry;
  registry.counter("queries.completed").Add(3);
  registry.gauge("pool.threads").Set(2);
  FixedHistogram& h = registry.histogram("query_ms", {1, 10});
  h.Record(1);
  h.Record(5);
  h.Record(500);
  const std::string text = registry.ExportPrometheusText();

  // Counters: crashsim_ prefix, sanitised name, _total suffix, TYPE line.
  EXPECT_NE(text.find("# TYPE crashsim_queries_completed_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("crashsim_queries_completed_total 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE crashsim_pool_threads gauge"),
            std::string::npos);
  EXPECT_NE(text.find("crashsim_pool_threads 2"), std::string::npos);

  // Histograms: cumulative buckets, closing +Inf, _sum and _count.
  EXPECT_NE(text.find("# TYPE crashsim_query_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("crashsim_query_ms_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("crashsim_query_ms_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("crashsim_query_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("crashsim_query_ms_sum 506"), std::string::npos);
  EXPECT_NE(text.find("crashsim_query_ms_count 3"), std::string::npos);
  // Exposition ends with a newline (required by the 0.0.4 text format).
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(SlidingHistogramTest, WindowMergesOnlyRecentSlots) {
  SlidingHistogram h({10, 100}, /*window_seconds=*/3);
  h.RecordAt(5, 1000);    // in window at t=1002
  h.RecordAt(50, 1001);   // in window
  h.RecordAt(500, 1002);  // in window
  const FixedHistogram::Snapshot now = h.WindowSnapshotAt(1002);
  EXPECT_EQ(now.total, 3);
  ASSERT_EQ(now.cumulative.size(), 3u);
  EXPECT_EQ(now.cumulative[0], 1);  // <= 10
  EXPECT_EQ(now.cumulative[1], 2);  // <= 100
  EXPECT_EQ(now.cumulative[2], 3);  // overflow
  // One second later the window is (1000, 1003]: the t=1000 slot aged out.
  const FixedHistogram::Snapshot later = h.WindowSnapshotAt(1003);
  EXPECT_EQ(later.total, 2);
  // Two more seconds and only the t=1002 slot remains.
  EXPECT_EQ(h.WindowSnapshotAt(1004).total, 1);
}

TEST(SlidingHistogramTest, SlotRecyclesWhenItsSecondComesAround) {
  SlidingHistogram h({10}, /*window_seconds=*/2);
  h.RecordAt(1, 100);
  h.RecordAt(1, 101);
  // Second 102 reuses the slot that held second 100; the old counts must
  // not leak into the fresh second.
  h.RecordAt(1, 102);
  const FixedHistogram::Snapshot snap = h.WindowSnapshotAt(102);
  EXPECT_EQ(snap.total, 2);  // seconds 101 + 102 only
}

TEST(SlidingHistogramTest, EmptyWindowQuantileIsZero) {
  SlidingHistogram h({10, 100}, /*window_seconds=*/5);
  EXPECT_EQ(h.WindowQuantile(0.5), 0);
  h.RecordAt(5, 10);
  // 1000 seconds later nothing is left in the window.
  EXPECT_EQ(SlidingHistogram::SnapshotQuantile(h.WindowSnapshotAt(1010), 0.5),
            0);
}

TEST(SlidingHistogramTest, NearestRankQuantilesResolveToBucketBounds) {
  SlidingHistogram h({1, 2, 4, 8, 16}, /*window_seconds=*/60);
  // 90 fast (<=1ms), 10 slow (<=16ms) at the same second.
  for (int i = 0; i < 90; ++i) h.RecordAt(1, 500);
  for (int i = 0; i < 10; ++i) h.RecordAt(16, 500);
  const FixedHistogram::Snapshot snap = h.WindowSnapshotAt(500);
  EXPECT_EQ(SlidingHistogram::SnapshotQuantile(snap, 0.50), 1);
  EXPECT_EQ(SlidingHistogram::SnapshotQuantile(snap, 0.95), 16);
  EXPECT_EQ(SlidingHistogram::SnapshotQuantile(snap, 0.99), 16);
}

TEST(SlidingHistogramTest, OverflowQuantileReportsLastFiniteBound) {
  SlidingHistogram h({1, 2}, /*window_seconds=*/60);
  h.RecordAt(1000, 7);  // overflow bucket
  EXPECT_EQ(SlidingHistogram::SnapshotQuantile(h.WindowSnapshotAt(7), 0.99),
            2);
}

TEST(SlidingHistogramTest, SteadyClockPathRecordsIntoCurrentWindow) {
  SlidingHistogram h({10, 100}, /*window_seconds=*/60);
  h.Record(5);
  h.Record(50);
  EXPECT_EQ(h.WindowSnapshot().total, 2);
  EXPECT_EQ(h.WindowQuantile(1.0), 100);
}

}  // namespace
}  // namespace crashsim
