#include "util/rng.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace crashsim {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(5);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(13);
  const uint64_t kBound = 10;
  std::vector<int> counts(kBound, 0);
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[rng.NextBounded(kBound)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kN, 0.1, 0.01);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(19);
  for (double p : {0.1, 0.5, 0.9}) {
    int hits = 0;
    const int kN = 100000;
    for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(p);
    EXPECT_NEAR(static_cast<double>(hits) / kN, p, 0.01);
  }
}

TEST(RngTest, BernoulliDegenerateCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, GeometricLengthMatchesMean) {
  // E[L] = 1 / (1 - p) for continue-probability p.
  Rng rng(29);
  const double p = std::sqrt(0.6);
  double sum = 0.0;
  const int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.GeometricLength(p);
  EXPECT_NEAR(sum / kN, 1.0 / (1.0 - p), 0.05);
}

TEST(RngTest, GeometricLengthAtLeastOne) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.GeometricLength(0.9), 1);
  EXPECT_EQ(rng.GeometricLength(0.0), 1);
}

TEST(RngTest, GeometricLengthTailProbability) {
  // P(L > k) = p^k; check k = 5 at p = 0.5 -> 1/32.
  Rng rng(37);
  int longer = 0;
  const int kN = 200000;
  for (int i = 0; i < kN; ++i) longer += (rng.GeometricLength(0.5) > 5);
  EXPECT_NEAR(static_cast<double>(longer) / kN, 1.0 / 32.0, 0.005);
}

TEST(RngTest, ForkProducesDecorrelatedStream) {
  Rng parent(41);
  Rng child = parent.Fork(1);
  // Child differs from a fresh parent-seeded stream and from the parent.
  Rng parent_again(41);
  EXPECT_NE(child.NextU64(), parent_again.NextU64());
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(43);
  Rng b(43);
  Rng ca = a.Fork(9);
  Rng cb = b.Fork(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.NextU64(), cb.NextU64());
}

}  // namespace
}  // namespace crashsim
