#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace crashsim {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(5);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(13);
  const uint64_t kBound = 10;
  std::vector<int> counts(kBound, 0);
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[rng.NextBounded(kBound)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kN, 0.1, 0.01);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(19);
  for (double p : {0.1, 0.5, 0.9}) {
    int hits = 0;
    const int kN = 100000;
    for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(p);
    EXPECT_NEAR(static_cast<double>(hits) / kN, p, 0.01);
  }
}

TEST(RngTest, BernoulliDegenerateCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, GeometricLengthMatchesMean) {
  // E[L] = 1 / (1 - p) for continue-probability p.
  Rng rng(29);
  const double p = std::sqrt(0.6);
  double sum = 0.0;
  const int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.GeometricLength(p);
  EXPECT_NEAR(sum / kN, 1.0 / (1.0 - p), 0.05);
}

TEST(RngTest, GeometricLengthAtLeastOne) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.GeometricLength(0.9), 1);
  EXPECT_EQ(rng.GeometricLength(0.0), 1);
}

TEST(RngTest, GeometricLengthTailProbability) {
  // P(L > k) = p^k; check k = 5 at p = 0.5 -> 1/32.
  Rng rng(37);
  int longer = 0;
  const int kN = 200000;
  for (int i = 0; i < kN; ++i) longer += (rng.GeometricLength(0.5) > 5);
  EXPECT_NEAR(static_cast<double>(longer) / kN, 1.0 / 32.0, 0.005);
}

TEST(RngTest, ForkProducesDecorrelatedStream) {
  Rng parent(41);
  Rng child = parent.Fork(1);
  // Child differs from a fresh parent-seeded stream and from the parent.
  Rng parent_again(41);
  EXPECT_NE(child.NextU64(), parent_again.NextU64());
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(43);
  Rng b(43);
  Rng ca = a.Fork(9);
  Rng cb = b.Fork(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.NextU64(), cb.NextU64());
}

TEST(StreamDerivationTest, Mix64IsBijectiveOnSamples) {
  // Mix64 is a bijection of u64 (invertible multiply/xorshift rounds), so
  // distinct inputs must give distinct outputs; sample densely around the
  // pitfalls (0 maps to 0; adjacent and power-of-two inputs).
  std::vector<uint64_t> outs;
  for (uint64_t x = 0; x < 4096; ++x) outs.push_back(Mix64(x));
  for (int s = 12; s < 64; ++s) outs.push_back(Mix64(uint64_t{1} << s));
  std::sort(outs.begin(), outs.end());
  EXPECT_EQ(std::adjacent_find(outs.begin(), outs.end()), outs.end());
  EXPECT_EQ(Mix64(0), 0u);  // known fixed point — why ChainSeed offsets by 1
}

TEST(StreamDerivationTest, ChainSeedZeroArgumentsAreNotFixedPoints) {
  // The regression the derivation contract exists to prevent: a plain
  // XOR/add chain maps (0, 0) to a degenerate seed shared by many streams.
  EXPECT_NE(ChainSeed(0, 0), 0u);
  EXPECT_NE(ChainSeed(ChainSeed(0, 0), 0), ChainSeed(0, 0));
  EXPECT_NE(PerWalkSeed(0, 0, 0), 0u);
}

TEST(StreamDerivationTest, ChainSeedIsInjectivePerArgument) {
  // For a fixed salt, word -> ChainSeed(salt, word) is injective (Mix64 of
  // an affine map with odd slope); check a contiguous block plus the
  // extremes for several salts.
  for (const uint64_t salt : {0ull, 42ull, 0xdeadbeefull}) {
    std::vector<uint64_t> outs;
    for (uint64_t w = 0; w < 8192; ++w) outs.push_back(ChainSeed(salt, w));
    outs.push_back(ChainSeed(salt, UINT64_MAX));
    outs.push_back(ChainSeed(salt, UINT64_MAX - 1));
    std::sort(outs.begin(), outs.end());
    EXPECT_EQ(std::adjacent_find(outs.begin(), outs.end()), outs.end());
  }
}

TEST(StreamDerivationTest, PerWalkSeedsDistinctAcrossCandidateTrialGrid) {
  // The latent-collision regression test: the old XOR-linear derivation
  // (seed ^ candidate * K1 ^ trial * K2) made swapped (candidate, trial)
  // pairs and aligned diagonals collide across queries. The chained-Mix64
  // derivation behaves like a random function of the pair: over a 512 x 512
  // grid (2^18 seeds) the birthday bound puts the collision probability
  // near 2^36 / 2^65 ~ 2^-29, so ANY duplicate is a derivation bug, not
  // bad luck.
  constexpr uint64_t kGrid = 512;
  std::vector<uint64_t> seeds;
  seeds.reserve(kGrid * kGrid);
  const uint64_t salt = ChainSeed(42, 7);  // a realistic query salt
  for (uint64_t cand = 0; cand < kGrid; ++cand) {
    for (uint64_t trial = 0; trial < kGrid; ++trial) {
      seeds.push_back(PerWalkSeed(salt, cand, trial));
    }
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

TEST(StreamDerivationTest, SwappedPairsAndAdjacentSaltsDoNotCollide) {
  // Directly pin the shapes the old derivation confused: (a, b) vs (b, a),
  // and the same pair under adjacent salts (two queries with consecutive
  // sources).
  const uint64_t s0 = ChainSeed(1, 10);
  const uint64_t s1 = ChainSeed(1, 11);
  for (uint64_t a = 0; a < 64; ++a) {
    for (uint64_t b = 0; b < 64; ++b) {
      if (a != b) {
        EXPECT_NE(PerWalkSeed(s0, a, b), PerWalkSeed(s0, b, a))
            << "a=" << a << " b=" << b;
      }
      EXPECT_NE(PerWalkSeed(s0, a, b), PerWalkSeed(s1, a, b))
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(StreamDerivationTest, FirstDrawsOfNeighbouringStreamsDiffer) {
  // Streams must be decorrelated from draw one — walk engines read only a
  // handful of draws per stream, so divergence cannot wait a warm-up.
  const uint64_t salt = ChainSeed(99, 3);
  std::vector<uint64_t> first;
  for (uint64_t cand = 0; cand < 128; ++cand) {
    for (uint64_t trial = 0; trial < 16; ++trial) {
      uint64_t state = PerWalkSeed(salt, cand, trial);
      first.push_back(SplitMix64Next(state));
    }
  }
  std::sort(first.begin(), first.end());
  EXPECT_EQ(std::adjacent_find(first.begin(), first.end()), first.end());
}

TEST(StreamDerivationTest, SplitMix64NextMatchesClassSequence) {
  // The free function is the single source of truth for SplitMix64; the
  // class wraps it, so both must emit the same sequence from the same seed.
  uint64_t state = 123;
  SplitMix64 cls(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(SplitMix64Next(state), cls.Next());
}

TEST(StreamDerivationTest, MapToRangeIsExactOnBoundaries) {
  // MapToRange(draw, n) = floor(draw * n / 2^64): draw 0 -> 0, the top draw
  // -> n - 1, and each outcome's preimage size differs by at most one (the
  // fixed-point uniformity the samplers build on).
  for (const uint64_t n : {1ull, 2ull, 3ull, 7ull, 1000ull}) {
    EXPECT_EQ(MapToRange(0, n), 0u);
    EXPECT_EQ(MapToRange(UINT64_MAX, n), n - 1);
    std::vector<int64_t> counts(n, 0);
    uint64_t state = 7 * n;
    for (int i = 0; i < 20000; ++i) ++counts[MapToRange(SplitMix64Next(state), n)];
    const auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
    if (n > 1) {
      EXPECT_GT(*lo, 0) << "n=" << n;
      EXPECT_LT(static_cast<double>(*hi - *lo),
                6.0 * std::sqrt(20000.0 / static_cast<double>(n)) + 10.0)
          << "n=" << n;
    }
  }
}

}  // namespace
}  // namespace crashsim
