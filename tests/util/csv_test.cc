#include "util/csv.h"

#include <sstream>

#include <gtest/gtest.h>

namespace crashsim {
namespace {

TEST(CsvEscapeTest, PlainFieldUnchanged) {
  EXPECT_EQ(CsvWriter::Escape("abc"), "abc");
  EXPECT_EQ(CsvWriter::Escape(""), "");
}

TEST(CsvEscapeTest, QuotesFieldsWithSpecials) {
  EXPECT_EQ(CsvWriter::Escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::Escape("a\"b"), "\"a\"\"b\"");
  EXPECT_EQ(CsvWriter::Escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriterTest, WritesRows) {
  std::ostringstream out;
  CsvWriter w(&out);
  w.WriteHeader({"x", "y"});
  w.WriteRow({"1", "two,three"});
  EXPECT_EQ(out.str(), "x,y\n1,\"two,three\"\n");
}

TEST(CsvWriterTest, EmptyRow) {
  std::ostringstream out;
  CsvWriter w(&out);
  w.WriteRow({});
  EXPECT_EQ(out.str(), "\n");
}

}  // namespace
}  // namespace crashsim
