// Pins the two contracts of util/thread_annotations.h + util/mutex.h that
// must hold on *every* compiler:
//
//  1. The annotation macros are benign no-ops outside clang: a translation
//     unit using all of them compiles under GCC (this file is that unit —
//     the class below spells out every macro the header exports).
//  2. The Mutex / MutexLock / CondVar wrappers behave like the std
//     primitives they wrap: mutual exclusion, relockable scopes, and
//     condition-variable wakeup/timeout.
//
// The clang-only half — that the annotations *reject* bad locking — lives in
// tools/lint/check_thread_safety_selftest.sh (ctest: lint.thread_safety).

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace crashsim {
namespace {

// One use of every exported macro. Compiling this class (and this file's
// inclusion in the default GCC build) is the test for contract 1.
class CRASHSIM_LOCKABLE EveryMacroOnce {
 public:
  void Acquire() CRASHSIM_ACQUIRE(mu_) { mu_.Lock(); }
  void Release() CRASHSIM_RELEASE(mu_) { mu_.Unlock(); }
  bool TryAcquire() CRASHSIM_TRY_ACQUIRE(true, mu_) { return mu_.TryLock(); }
  void RequiresLock() CRASHSIM_REQUIRES(mu_) { ++guarded_; }
  void ExcludesLock() CRASHSIM_EXCLUDES(mu_) {}
  Mutex& GetMutex() CRASHSIM_RETURN_CAPABILITY(mu_) { return mu_; }
  void AssertHeld() CRASHSIM_ASSERT_CAPABILITY(mu_) {}
  void Unchecked() CRASHSIM_NO_THREAD_SAFETY_ANALYSIS { ++guarded_; }

 private:
  Mutex mu_;
  Mutex later_ CRASHSIM_ACQUIRED_AFTER(mu_);
  Mutex earlier_ CRASHSIM_ACQUIRED_BEFORE(later_);
  int guarded_ CRASHSIM_GUARDED_BY(mu_) = 0;
  int* pointee_ CRASHSIM_PT_GUARDED_BY(mu_) = nullptr;
};

TEST(ThreadAnnotationsTest, MacrosAreNoOpsOutsideClang) {
  EveryMacroOnce subject;
  subject.Acquire();
  subject.RequiresLock();
  subject.Release();
  ASSERT_TRUE(subject.TryAcquire());
  subject.Release();
  subject.Unchecked();
}

TEST(MutexTest, MutualExclusionAcrossThreads) {
  Mutex mu;
  int64_t counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        const MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, int64_t{kThreads} * kIncrements);
}

TEST(MutexTest, TryLockReflectsContention) {
  Mutex mu;
  mu.Lock();
  EXPECT_FALSE(mu.TryLock());
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexLockTest, UnlockThenRelockCoversBuildOutsideTheLock) {
  Mutex mu;
  MutexLock lock(mu);
  lock.Unlock();
  // While released, another thread can take the mutex.
  std::thread other([&] {
    const MutexLock inner(mu);
  });
  other.join();
  lock.Lock();  // reacquired; destructor releases exactly once
}

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread signaller([&] {
    const MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    EXPECT_TRUE(ready);
  }
  signaller.join();
}

TEST(CondVarTest, WaitForTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const auto status = cv.WaitFor(mu, std::chrono::milliseconds(5));
  EXPECT_EQ(status, std::cv_status::timeout);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  std::atomic<int> woke{0};
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.Wait(mu);
      woke.fetch_add(1);
    });
  }
  {
    const MutexLock lock(mu);
    go = true;
    cv.NotifyAll();
  }
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(woke.load(), kWaiters);
}

}  // namespace
}  // namespace crashsim
