#include "util/histogram.h"

#include <gtest/gtest.h>

namespace crashsim {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.max_value(), 0);
  EXPECT_EQ(h.ToString(), "");
}

TEST(HistogramTest, ZerosTrackedSeparately) {
  Histogram h;
  h.Add(0);
  h.Add(0);
  h.Add(3);
  EXPECT_EQ(h.zeros(), 2);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.Mean(), 1.0);
}

TEST(HistogramTest, PowerOfTwoBucketing) {
  Histogram h;
  h.Add(1);   // bucket 0: [1,2)
  h.Add(2);   // bucket 1: [2,4)
  h.Add(3);   // bucket 1
  h.Add(4);   // bucket 2: [4,8)
  h.Add(7);   // bucket 2
  h.Add(8);   // bucket 3: [8,16)
  EXPECT_EQ(h.BucketCount(0), 1);
  EXPECT_EQ(h.BucketCount(1), 2);
  EXPECT_EQ(h.BucketCount(2), 2);
  EXPECT_EQ(h.BucketCount(3), 1);
  EXPECT_EQ(h.BucketCount(4), 0);
  EXPECT_EQ(h.max_value(), 8);
}

TEST(HistogramTest, OutOfRangeBucketQueriesAreZero) {
  Histogram h;
  h.Add(5);
  EXPECT_EQ(h.BucketCount(-1), 0);
  EXPECT_EQ(h.BucketCount(100), 0);
}

TEST(HistogramTest, ToStringSkipsEmptyBuckets) {
  Histogram h;
  h.Add(0);
  h.Add(1);
  h.Add(9);
  const std::string s = h.ToString();
  EXPECT_NE(s.find("0:1"), std::string::npos);
  EXPECT_NE(s.find("[1,2):1"), std::string::npos);
  EXPECT_NE(s.find("[8,16):1"), std::string::npos);
  EXPECT_EQ(s.find("[2,4)"), std::string::npos);
}

TEST(HistogramTest, LargeValues) {
  Histogram h;
  h.Add((1LL << 40) + 5);
  EXPECT_EQ(h.BucketCount(40), 1);
  EXPECT_EQ(h.max_value(), (1LL << 40) + 5);
}

}  // namespace
}  // namespace crashsim
