#include "util/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/parallel.h"
#include "util/timer.h"

namespace crashsim {
namespace {

// Occurrences of `needle` in `hay` (non-overlapping).
int CountOccurrences(const std::string& hay, const std::string& needle) {
  int count = 0;
  for (size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// This thread's recorded events (tests run single-threaded unless they
// explicitly spawn work, so the first non-empty buffer is ours).
std::vector<TraceEvent> OwnThreadEvents() {
  for (TraceThreadEvents& t : SnapshotTraceEvents()) {
    if (!t.events.empty()) return std::move(t.events);
  }
  return {};
}

TEST(TraceTest, DisabledByDefaultAndToggles) {
  EXPECT_FALSE(TraceEnabled());
  StartTracing();
  EXPECT_TRUE(TraceEnabled());
  StopTracing();
  EXPECT_FALSE(TraceEnabled());
}

TEST(TraceTest, DisabledSpansRecordNothing) {
  StartTracing();
  StopTracing();  // resets buffers, leaves tracing off
  {
    TRACE_SPAN("never.recorded");
  }
  for (const TraceThreadEvents& t : SnapshotTraceEvents()) {
    for (const TraceEvent& e : t.events) {
      EXPECT_STRNE(e.name, "never.recorded");
    }
  }
}

TEST(TraceTest, BeginEndPairsAreBalancedAndNested) {
  StartTracing();
  {
    TRACE_SPAN("outer");
    {
      TRACE_SPAN("inner");
    }
  }
  StopTracing();
  const std::vector<TraceEvent> events = OwnThreadEvents();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[0].phase, TraceEvent::Phase::kBegin);
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[1].phase, TraceEvent::Phase::kBegin);
  EXPECT_STREQ(events[2].name, "inner");
  EXPECT_EQ(events[2].phase, TraceEvent::Phase::kEnd);
  EXPECT_STREQ(events[3].name, "outer");
  EXPECT_EQ(events[3].phase, TraceEvent::Phase::kEnd);
  // Timestamps are monotonic within the thread.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
  }
}

TEST(TraceTest, AggregateSplitsSelfFromTotal) {
  StartTracing();
  {
    TRACE_SPAN("agg.outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    {
      TRACE_SPAN("agg.inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  StopTracing();
  const std::vector<TraceAggregateRow> rows = AggregateTrace();
  const TraceAggregateRow* outer = nullptr;
  const TraceAggregateRow* inner = nullptr;
  for (const TraceAggregateRow& r : rows) {
    if (r.name == "agg.outer") outer = &r;
    if (r.name == "agg.inner") inner = &r;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1);
  EXPECT_EQ(inner->count, 1);
  // outer's total covers inner; outer's self excludes it exactly.
  EXPECT_GE(outer->total_ns, inner->total_ns);
  EXPECT_EQ(outer->self_ns, outer->total_ns - inner->total_ns);
  // inner has no children: self == total, and it slept >= 10ms.
  EXPECT_EQ(inner->self_ns, inner->total_ns);
  EXPECT_GE(inner->total_ns, 9 * 1000 * 1000);
  const std::string table = ExportTraceAggregateTable();
  EXPECT_NE(table.find("agg.outer"), std::string::npos);
  EXPECT_NE(table.find("self_ms"), std::string::npos);
}

TEST(TraceTest, ChromeExportIsBalancedJson) {
  StartTracing();
  {
    TRACE_SPAN("chrome \"quoted\\name\"");  // exercises JSON escaping
    TRACE_SPAN("chrome.second");
  }
  StopTracing();
  const std::string json = ExportChromeTrace();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(CountOccurrences(json, "\"ph\": \"B\""),
            CountOccurrences(json, "\"ph\": \"E\""));
  // The quote in the span name must be escaped, never bare inside a string.
  EXPECT_NE(json.find("chrome \\\"quoted\\\\name\\\""), std::string::npos);
  // Braces balance (cheap structural sanity without a JSON parser; the
  // bench smoke lane runs the real parser via python).
  EXPECT_EQ(CountOccurrences(json, "{"), CountOccurrences(json, "}"));
}

TEST(TraceTest, UnclosedSpanIsSynthesizedClosed) {
  auto* leak = new TraceSpan("pre.start");  // never recorded: tracing off
  StartTracing();
  auto* open = new TraceSpan("left.open");
  {
    TRACE_SPAN("closed.child");
  }
  StopTracing();
  const std::string json = ExportChromeTrace();
  // The open span appears and the export is still balanced.
  EXPECT_NE(json.find("left.open"), std::string::npos);
  EXPECT_EQ(CountOccurrences(json, "\"ph\": \"B\""),
            CountOccurrences(json, "\"ph\": \"E\""));
  delete open;
  delete leak;
}

TEST(TraceTest, ParallelForShardsCarryFlowEvents) {
  StartTracing();
  std::atomic<int64_t> sum{0};
  // min_chunk 1 and an explicit 2-thread budget: even a single-core host's
  // one-worker pool receives a shard, so a flow arrow must exist.
  ParallelFor(
      8, [&sum](int64_t begin, int64_t end) { sum.fetch_add(end - begin); },
      /*min_chunk=*/1, /*max_threads=*/2);
  StopTracing();
  EXPECT_EQ(sum.load(), 8);

  std::vector<uint64_t> flow_out_ids;
  std::vector<uint64_t> flow_in_ids;
  bool saw_shard_span = false;
  for (const TraceThreadEvents& t : SnapshotTraceEvents()) {
    for (const TraceEvent& e : t.events) {
      if (e.phase == TraceEvent::Phase::kFlowOut) {
        flow_out_ids.push_back(e.flow_id);
      } else if (e.phase == TraceEvent::Phase::kFlowIn) {
        flow_in_ids.push_back(e.flow_id);
      } else if (e.phase == TraceEvent::Phase::kBegin &&
                 std::string(e.name) == "parallel_for.shard") {
        saw_shard_span = true;
      }
    }
  }
  EXPECT_TRUE(saw_shard_span);
  ASSERT_FALSE(flow_out_ids.empty());
  ASSERT_FALSE(flow_in_ids.empty());
  // Every shard-side arrow terminates one spawned by a ParallelFor call.
  for (uint64_t id : flow_in_ids) {
    EXPECT_NE(id, 0u);
    EXPECT_NE(std::find(flow_out_ids.begin(), flow_out_ids.end(), id),
              flow_out_ids.end());
  }
  // And the Chrome export renders them as s/f events sharing ids.
  const std::string json = ExportChromeTrace();
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\": \"e\""), std::string::npos);
}

TEST(TraceTest, OverflowDropsEventsButStaysBalanced) {
  StartTracing();
  // 2 events per span against a 64Ki-event buffer: guaranteed overflow.
  for (int i = 0; i < 40000; ++i) {
    TRACE_SPAN("spam");
  }
  StopTracing();
  EXPECT_GT(TraceDroppedEvents(), 0);
  const std::string json = ExportChromeTrace();
  EXPECT_EQ(CountOccurrences(json, "\"ph\": \"B\""),
            CountOccurrences(json, "\"ph\": \"E\""));
  const std::string table = ExportTraceAggregateTable();
  EXPECT_NE(table.find("dropped"), std::string::npos);
}

TEST(TraceTest, FlowHelpersNoOpWhenDisabledOrZero) {
  StartTracing();
  StopTracing();  // buffers reset and tracing off
  TraceFlowOut(NewTraceFlowId());
  TraceFlowIn(7);
  StartTracing();
  TraceFlowOut(0);  // id 0 = "tracing was off at id-mint time": no event
  TraceFlowIn(0);
  StopTracing();
  for (const TraceThreadEvents& t : SnapshotTraceEvents()) {
    for (const TraceEvent& e : t.events) {
      EXPECT_NE(e.phase, TraceEvent::Phase::kFlowOut);
      EXPECT_NE(e.phase, TraceEvent::Phase::kFlowIn);
    }
  }
}

TEST(RequestTraceTest, CollectsSpansWhileGlobalTracingIsOff) {
  StopTracing();
  ASSERT_FALSE(TraceEnabled());
  RequestTrace trace(/*request_id=*/42);
  {
    const TraceRequestScope scope(&trace);
    TRACE_SPAN("request.outer");
    {
      TRACE_SPAN("request.inner");
    }
  }
  EXPECT_EQ(trace.request_id(), 42u);
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_STREQ(trace.event(0).name, "request.outer");
  EXPECT_EQ(trace.event(0).phase, TraceEvent::Phase::kBegin);
  EXPECT_STREQ(trace.event(1).name, "request.inner");
  EXPECT_STREQ(trace.event(2).name, "request.inner");
  EXPECT_EQ(trace.event(2).phase, TraceEvent::Phase::kEnd);
  EXPECT_STREQ(trace.event(3).name, "request.outer");
  EXPECT_EQ(trace.event(3).phase, TraceEvent::Phase::kEnd);
  EXPECT_EQ(trace.dropped(), 0);
  // The global rings stayed empty: nothing was enabled.
  for (const TraceThreadEvents& t : SnapshotTraceEvents()) {
    for (const TraceEvent& e : t.events) {
      EXPECT_STRNE(e.name, "request.outer");
    }
  }
}

TEST(RequestTraceTest, ScopesNestAndRestore) {
  RequestTrace outer_trace(1);
  RequestTrace inner_trace(2);
  EXPECT_EQ(CurrentRequestTrace(), nullptr);
  {
    const TraceRequestScope outer(&outer_trace);
    EXPECT_EQ(CurrentRequestTrace(), &outer_trace);
    {
      const TraceRequestScope inner(&inner_trace);
      EXPECT_EQ(CurrentRequestTrace(), &inner_trace);
      TRACE_SPAN("nested.span");
    }
    EXPECT_EQ(CurrentRequestTrace(), &outer_trace);
  }
  EXPECT_EQ(CurrentRequestTrace(), nullptr);
  EXPECT_EQ(inner_trace.size(), 2u);
  EXPECT_EQ(outer_trace.size(), 0u);
}

TEST(RequestTraceTest, OverflowDropsAndCounts) {
  RequestTrace trace(3);
  const TraceRequestScope scope(&trace);
  const int spans = static_cast<int>(RequestTrace::kCapacity);  // 2x events
  for (int i = 0; i < spans; ++i) {
    TRACE_SPAN("request.spam");
  }
  EXPECT_EQ(trace.size(), RequestTrace::kCapacity);
  EXPECT_EQ(trace.dropped(),
            static_cast<int64_t>(RequestTrace::kCapacity));
}

TEST(RequestTraceTest, ParallelForShardsInheritTheRequestScope) {
  StopTracing();
  RequestTrace trace(7);
  {
    const TraceRequestScope scope(&trace);
    TRACE_SPAN("request.parallel");
    std::atomic<int64_t> sum{0};
    ParallelFor(
        8, [&sum](int64_t begin, int64_t end) { sum.fetch_add(end - begin); },
        /*min_chunk=*/1, /*max_threads=*/2);
    EXPECT_EQ(sum.load(), 8);
  }
  // Worker threads recorded their shard spans into this request's trace,
  // linked back to the spawning ParallelFor call by matching flow ids.
  bool saw_shard = false;
  std::vector<uint64_t> flow_out_ids;
  std::vector<uint64_t> flow_in_ids;
  for (size_t i = 0; i < trace.size(); ++i) {
    const RequestTrace::Event& e = trace.event(i);
    if (e.phase == TraceEvent::Phase::kFlowOut) {
      flow_out_ids.push_back(e.flow_id);
    } else if (e.phase == TraceEvent::Phase::kFlowIn) {
      flow_in_ids.push_back(e.flow_id);
    } else if (e.phase == TraceEvent::Phase::kBegin &&
               std::string(e.name) == "parallel_for.shard") {
      saw_shard = true;
    }
  }
  EXPECT_TRUE(saw_shard);
  ASSERT_FALSE(flow_in_ids.empty());
  for (const uint64_t id : flow_in_ids) {
    EXPECT_NE(std::find(flow_out_ids.begin(), flow_out_ids.end(), id),
              flow_out_ids.end());
  }
}

TEST(RequestTraceTest, SpanRecordsToInstallTimeCollector) {
  // A span records to the collector current at its *construction*: a scope
  // that ends while the span is open must not lose the End event.
  RequestTrace trace(9);
  auto scope = std::make_unique<TraceRequestScope>(&trace);
  auto span = std::make_unique<TraceSpan>("straddling.span");
  scope.reset();  // uninstall while the span is open
  span.reset();   // End still lands in `trace`
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.event(1).phase, TraceEvent::Phase::kEnd);
}

TEST(TraceTest, DisabledSpanOverheadIsNanoseconds) {
  StopTracing();
  ASSERT_FALSE(TraceEnabled());
  constexpr int kIters = 2'000'000;
  // Best of three reps: the bound guards the order of magnitude (one relaxed
  // load + branch ≈ 1-2 ns), not a precise figure; the minimum shields the
  // guard from scheduler noise on loaded single-core CI hosts.
  double best_ns = 1e9;
  for (int rep = 0; rep < 3; ++rep) {
    const Stopwatch sw;
    for (int i = 0; i < kIters; ++i) {
      TRACE_SPAN("overhead.probe");
    }
    best_ns = std::min(best_ns, sw.ElapsedSeconds() * 1e9 / kIters);
  }
  EXPECT_LT(best_ns, 30.0) << "disabled TRACE_SPAN must stay out of the "
                              "hot-path cost model";
}

}  // namespace
}  // namespace crashsim
