#include "util/logging.h"

#include <gtest/gtest.h>

namespace crashsim {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  CRASHSIM_CHECK(true) << "never evaluated";
  CRASHSIM_CHECK_EQ(1, 1);
  CRASHSIM_CHECK_LT(1, 2);
  CRASHSIM_CHECK_GE(2, 2);
  CRASHSIM_CHECK_NE(1, 2);
}

using CheckDeathTest = testing::Test;

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(CRASHSIM_CHECK(false) << "boom", "CHECK failed: false boom");
}

TEST(CheckDeathTest, ComparisonMacrosReportExpression) {
  EXPECT_DEATH(CRASHSIM_CHECK_EQ(1, 2), "CHECK failed");
  EXPECT_DEATH(CRASHSIM_CHECK_GT(1, 2), "CHECK failed");
}

TEST(CheckDeathTest, MessageIncludesFileLocation) {
  EXPECT_DEATH(CRASHSIM_CHECK(false), "logging_test.cc");
}

TEST(LogLevelTest, ThresholdFiltersSilently) {
  // Only verifies the calls are safe at every threshold; output goes to
  // stderr and is not captured here.
  SetLogLevel(LogLevel::kError);
  CRASHSIM_LOG(Info) << "filtered";
  CRASHSIM_LOG(Warning) << "filtered";
  SetLogLevel(LogLevel::kDebug);
  CRASHSIM_LOG(Debug) << "emitted";
  SetLogLevel(LogLevel::kInfo);  // restore default
}

}  // namespace
}  // namespace crashsim
