#include "util/memory_budget.h"

#include <atomic>
#include <string>

#include <gtest/gtest.h>

#include "util/parallel.h"
#include "util/status.h"

namespace crashsim {
namespace {

TEST(MemoryBudgetTest, ChargeWithinLimitSucceeds) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.Charge(400, "a").ok());
  EXPECT_TRUE(budget.Charge(600, "b").ok());
  EXPECT_EQ(budget.used(), 1000);
  EXPECT_EQ(budget.peak(), 1000);
}

TEST(MemoryBudgetTest, OverLimitChargeFailsAndRefunds) {
  MemoryBudget budget(1000);
  ASSERT_TRUE(budget.Charge(900, "base").ok());
  const Status s = budget.Charge(200, "revReach tree");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  // The failed charge must not stick: the message carries the byte counts
  // and `used` snaps back to the pre-charge value.
  EXPECT_NE(s.message().find("revReach tree"), std::string::npos);
  EXPECT_NE(s.message().find("200"), std::string::npos);
  EXPECT_EQ(budget.used(), 900);
}

TEST(MemoryBudgetTest, ReleaseReturnsBytes) {
  MemoryBudget budget(1000);
  ASSERT_TRUE(budget.Charge(800, "a").ok());
  budget.Release(500);
  EXPECT_EQ(budget.used(), 300);
  EXPECT_TRUE(budget.Charge(700, "b").ok());
  EXPECT_EQ(budget.peak(), 1000);
}

TEST(MemoryBudgetTest, OverReleaseClampsAtZero) {
  MemoryBudget budget(1000);
  ASSERT_TRUE(budget.Charge(100, "a").ok());
  budget.Release(400);
  EXPECT_EQ(budget.used(), 0);
}

TEST(MemoryBudgetTest, NonPositiveChargesAreNoOps) {
  MemoryBudget budget(10);
  EXPECT_TRUE(budget.Charge(0, "zero").ok());
  EXPECT_TRUE(budget.Charge(-5, "negative").ok());
  EXPECT_EQ(budget.used(), 0);
}

TEST(MemoryBudgetTest, UnlimitedBudgetStillTracksPeak) {
  MemoryBudget budget(0);
  EXPECT_TRUE(budget.Charge(1 << 30, "huge").ok());
  EXPECT_EQ(budget.peak(), 1 << 30);
  budget.Release(1 << 30);
  EXPECT_EQ(budget.used(), 0);
  EXPECT_EQ(budget.peak(), 1 << 30);
}

TEST(MemoryBudgetTest, ScopedReleaseRefundsOnScopeExit) {
  MemoryBudget budget(1000);
  int64_t charged = 0;
  {
    ScopedBudgetRelease guard(&budget, &charged);
    ASSERT_TRUE(budget.Charge(600, "scratch").ok());
    charged = 600;
  }
  EXPECT_EQ(budget.used(), 0);
}

TEST(MemoryBudgetTest, ScopedReleaseDismissKeepsCharge) {
  MemoryBudget budget(1000);
  int64_t charged = 0;
  {
    ScopedBudgetRelease guard(&budget, &charged);
    ASSERT_TRUE(budget.Charge(600, "tree").ok());
    charged = 600;
    guard.Dismiss();
  }
  EXPECT_EQ(budget.used(), 600);
}

TEST(MemoryBudgetTest, NullBudgetGuardIsNoOp) {
  int64_t charged = 123;
  ScopedBudgetRelease guard(nullptr, &charged);  // must not crash
}

// Over-budget detection is exact under concurrent charges: with limit L and
// each worker charging 1 byte at a time, exactly L charges succeed.
TEST(MemoryBudgetTest, ConcurrentChargesNeverOvershoot) {
  constexpr int64_t kLimit = 4096;
  constexpr int64_t kAttempts = 16384;
  MemoryBudget budget(kLimit);
  std::atomic<int64_t> granted{0};
  ParallelFor(
      kAttempts,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          if (budget.Charge(1, "concurrent").ok()) {
            granted.fetch_add(1, std::memory_order_relaxed);
          }
        }
      },
      /*min_chunk=*/64);
  EXPECT_EQ(granted.load(), kLimit);
  EXPECT_EQ(budget.used(), kLimit);
  EXPECT_EQ(budget.peak(), kLimit);
}

}  // namespace
}  // namespace crashsim
