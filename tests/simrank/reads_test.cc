#include "simrank/reads.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/snapshot_diff.h"
#include "simrank/power_method.h"

namespace crashsim {
namespace {

ReadsOptions Options(int r = 100, uint64_t seed = 42) {
  ReadsOptions opt;
  opt.r = r;
  opt.r_q = 10;
  opt.t = 10;
  opt.seed = seed;
  return opt;
}

TEST(ReadsTest, SelfScoreIsOne) {
  const Graph g = PaperExampleGraph();
  Reads algo(Options());
  algo.Bind(&g);
  EXPECT_DOUBLE_EQ(algo.SingleSource(4)[4], 1.0);
}

TEST(ReadsTest, ScoresAreSampleFractions) {
  const Graph g = PaperExampleGraph();
  Reads algo(Options(50));
  algo.Bind(&g);
  for (double s : algo.SingleSource(0)) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
    // With r = 50 every score is a multiple of 1/50.
    EXPECT_NEAR(s * 50.0, std::round(s * 50.0), 1e-9);
  }
}

TEST(ReadsTest, ApproximatesGroundTruthLoosely) {
  // READS has no error guarantee (the paper's point); with a large r the
  // estimate should still land in the right neighbourhood.
  const Graph g = PaperExampleGraph();
  const SimRankMatrix truth = PowerMethodAllPairs(g, 0.6, 55);
  Reads algo(Options(4000));
  algo.Bind(&g);
  const auto scores = algo.SingleSource(0);
  for (NodeId v = 1; v < 8; ++v) {
    EXPECT_NEAR(scores[static_cast<size_t>(v)], truth.At(0, v), 0.08)
        << "node " << v;
  }
}

TEST(ReadsTest, DeterministicGivenSeed) {
  const Graph g = PaperExampleGraph();
  Reads a(Options(100, 3));
  Reads b(Options(100, 3));
  a.Bind(&g);
  b.Bind(&g);
  EXPECT_EQ(a.SingleSource(1), b.SingleSource(1));
}

TEST(ReadsTest, IndexBytesScalesWithRAndN) {
  const Graph g = PaperExampleGraph();
  Reads small(Options(10));
  small.Bind(&g);
  Reads large(Options(100));
  large.Bind(&g);
  EXPECT_EQ(large.IndexBytes(), 10 * small.IndexBytes());
}

// Regression: ApplyDelta used to resample the dirty destinations in
// std::unordered_set iteration order. ResampleNode consumes the one shared
// RNG stream, so hash order leaked into every subsequent score — two deltas
// with the same edge *set* but different list order produced different
// indexes. The dirty set must be visited in sorted order: any permutation
// of an equal delta leaves the index bit-identical.
TEST(ReadsTest, ApplyDeltaIsInvariantToDeltaPermutation) {
  Rng rng(17);
  const Graph g1 = ErdosRenyi(30, 120, false, &rng);
  std::vector<Edge> edges = g1.Edges();
  EdgeDelta delta;
  for (int i = 0; i < 6; ++i) {
    delta.removed.push_back(edges[static_cast<size_t>(i) * 5]);
  }
  delta.added = {{1, 28}, {2, 27}, {3, 26}, {4, 25}, {5, 24}, {6, 23}};
  std::sort(delta.removed.begin(), delta.removed.end());
  std::sort(delta.added.begin(), delta.added.end());
  std::vector<Edge> updated_edges = edges;
  ApplyDelta(delta, &updated_edges);
  const Graph g2 = BuildGraph(30, updated_edges);

  // The same delta with both event lists reversed: equal as a set, maximally
  // different as a sequence (and hashed in a different insertion order).
  EdgeDelta permuted = delta;
  std::reverse(permuted.added.begin(), permuted.added.end());
  std::reverse(permuted.removed.begin(), permuted.removed.end());

  Reads a(Options(200));
  a.Bind(&g1);
  a.ApplyDelta(delta, &g2);

  Reads b(Options(200));
  b.Bind(&g1);
  b.ApplyDelta(permuted, &g2);

  for (NodeId u = 0; u < g2.num_nodes(); ++u) {
    ASSERT_EQ(a.SingleSource(u), b.SingleSource(u)) << "source " << u;
  }
}

TEST(ReadsTest, ApplyDeltaMatchesRebindDistribution) {
  // Incremental repair must leave the index consistent with the new graph:
  // pointers only ever point to current in-neighbours.
  Rng rng(9);
  const Graph g1 = ErdosRenyi(30, 120, false, &rng);
  std::vector<Edge> edges = g1.Edges();
  // Remove 5 edges, add 5 new ones.
  EdgeDelta delta;
  for (int i = 0; i < 5; ++i) {
    delta.removed.push_back(edges[static_cast<size_t>(i) * 7]);
  }
  delta.added = {{1, 28}, {2, 27}, {3, 26}, {4, 25}, {5, 24}};
  std::sort(delta.removed.begin(), delta.removed.end());
  std::sort(delta.added.begin(), delta.added.end());
  std::vector<Edge> updated_edges = edges;
  ApplyDelta(delta, &updated_edges);
  const Graph g2 = BuildGraph(30, updated_edges);

  Reads algo(Options(200));
  algo.Bind(&g1);
  algo.ApplyDelta(delta, &g2);
  // All scores computable and bounded on the new graph.
  const auto scores = algo.SingleSource(0);
  ASSERT_EQ(scores.size(), 30u);
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(ReadsTest, DisconnectedNodesNeverMeet) {
  // Two disjoint 2-cycles: no cross-component meetings possible.
  const Graph g = BuildGraph(4, {{0, 1}, {1, 0}, {2, 3}, {3, 2}});
  Reads algo(Options(500));
  algo.Bind(&g);
  const auto scores = algo.SingleSource(0);
  EXPECT_DOUBLE_EQ(scores[2], 0.0);
  EXPECT_DOUBLE_EQ(scores[3], 0.0);
}

TEST(ReadsTest, WalkCapLimitsMeetingDepth) {
  // On a long path meetings deeper than t steps are invisible; scores stay 0
  // for far-apart nodes when t is tiny.
  ReadsOptions opt = Options(200);
  opt.t = 1;
  const Graph g = PathGraph(6, false);
  Reads algo(opt);
  algo.Bind(&g);
  const auto scores = algo.SingleSource(5);
  // Node 5's only 1-step destination is node 4's neighbourhood; node 0 is
  // unreachable in one step from anything shared.
  EXPECT_DOUBLE_EQ(scores[0], 0.0);
}

// ---- Context-aware (anytime) entry point ----

TEST(ReadsContextTest, CompleteRunMatchesLegacyEntryPoint) {
  // The ctx path consumes the member RNG exactly like the legacy one, so a
  // complete run is bit-identical.
  const Graph g = CycleGraph(500, /*undirected=*/true);
  Reads legacy(Options());
  legacy.Bind(&g);
  const std::vector<double> expected = legacy.SingleSource(3);

  Reads algo(Options());
  algo.Bind(&g);
  QueryContext ctx;
  const PartialResult result = algo.SingleSource(3, &ctx);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.trials_done, g.num_nodes());
  EXPECT_EQ(result.trials_target, g.num_nodes());
  EXPECT_EQ(result.scores, expected);
}

TEST(ReadsContextTest, CancellationYieldsExactPartialPrefix) {
  // READS progress is candidates scored: a cancelled sweep scores the prefix
  // [0, trials_done) exactly as the full run would and leaves the rest 0.
  const Graph g = CycleGraph(2000, /*undirected=*/true);
  Reads full_algo(Options());
  full_algo.Bind(&g);
  QueryContext full_ctx;
  const PartialResult full = full_algo.SingleSource(3, &full_ctx);
  ASSERT_TRUE(full.status.ok());

  Reads algo(Options());
  algo.Bind(&g);
  QueryContext ctx;
  ctx.Cancel();
  const PartialResult partial = algo.SingleSource(3, &ctx);
  EXPECT_EQ(partial.status.code(), StatusCode::kCancelled);
  // The first 256-candidate chunk always completes before the checkpoint.
  ASSERT_GE(partial.trials_done, 256);
  ASSERT_LT(partial.trials_done, g.num_nodes());
  const NodeId done = static_cast<NodeId>(partial.trials_done);
  for (NodeId v = 0; v < done; ++v) {
    EXPECT_EQ(partial.scores[static_cast<size_t>(v)],
              full.scores[static_cast<size_t>(v)])
        << v;
  }
  for (NodeId v = done; v < g.num_nodes(); ++v) {
    EXPECT_EQ(partial.scores[static_cast<size_t>(v)], 0.0) << v;
  }
  // READS carries no epsilon parameter, so no bound is claimed.
  EXPECT_TRUE(std::isinf(partial.epsilon_achieved));
}

TEST(ReadsContextTest, ExpiredDeadlineStillScoresFirstChunk) {
  const Graph g = CycleGraph(2000, /*undirected=*/true);
  Reads algo(Options());
  algo.Bind(&g);
  QueryContext ctx(std::chrono::milliseconds(0));
  const PartialResult result = algo.SingleSource(3, &ctx);
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(result.trials_done, 256);
  EXPECT_DOUBLE_EQ(result.scores[3], 1.0);
}

TEST(ReadsContextTest, InvalidSourceIsInvalidArgument) {
  const Graph g = PaperExampleGraph();
  Reads algo(Options());
  algo.Bind(&g);
  QueryContext ctx;
  const PartialResult result = algo.SingleSource(-1, &ctx);
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(result.scores.empty());
}

}  // namespace
}  // namespace crashsim
