#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "simrank/reads.h"
#include "util/rng.h"

namespace crashsim {
namespace {

ReadsOptions Options(int r = 50, uint64_t seed = 42) {
  ReadsOptions opt;
  opt.r = r;
  opt.seed = seed;
  return opt;
}

TEST(ReadsPersistenceTest, SaveLoadRoundTripPreservesScores) {
  Rng rng(1);
  const Graph g = ErdosRenyi(40, 160, false, &rng);
  Reads original(Options());
  original.Bind(&g);
  const auto scores_before = original.SingleSource(3);

  std::stringstream buffer;
  original.SaveIndex(buffer);

  // A fresh instance with a different seed would normally produce different
  // scores; loading the index must restore the exact sampled forests.
  Reads restored(Options(50, /*seed=*/999));
  restored.Bind(&g);
  std::string error;
  ASSERT_TRUE(restored.LoadIndex(buffer, &error)) << error;
  // Query-time r_q walks draw fresh randomness, so compare with r_q = 0.
  ReadsOptions no_rq = Options();
  no_rq.r_q = 0;
  Reads a(no_rq);
  Reads b(no_rq);
  a.Bind(&g);
  std::stringstream buffer2;
  a.SaveIndex(buffer2);
  b.Bind(&g);
  ASSERT_TRUE(b.LoadIndex(buffer2, &error)) << error;
  EXPECT_EQ(a.SingleSource(3), b.SingleSource(3));
  (void)scores_before;
}

TEST(ReadsPersistenceTest, RejectsBadMagic) {
  const Graph g = PaperExampleGraph();
  Reads reads(Options());
  reads.Bind(&g);
  std::stringstream buffer("this is not an index");
  std::string error;
  EXPECT_FALSE(reads.LoadIndex(buffer, &error));
  EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST(ReadsPersistenceTest, RejectsShapeMismatch) {
  const Graph g1 = PaperExampleGraph();
  Reads small(Options());
  small.Bind(&g1);
  std::stringstream buffer;
  small.SaveIndex(buffer);

  Rng rng(2);
  const Graph g2 = ErdosRenyi(20, 60, false, &rng);
  Reads other(Options());
  other.Bind(&g2);
  std::string error;
  EXPECT_FALSE(other.LoadIndex(buffer, &error));
  EXPECT_NE(error.find("mismatch"), std::string::npos);
}

TEST(ReadsPersistenceTest, RejectsDifferentR) {
  const Graph g = PaperExampleGraph();
  Reads r50(Options(50));
  r50.Bind(&g);
  std::stringstream buffer;
  r50.SaveIndex(buffer);
  Reads r100(Options(100));
  r100.Bind(&g);
  std::string error;
  EXPECT_FALSE(r100.LoadIndex(buffer, &error));
}

TEST(ReadsPersistenceTest, RejectsTruncatedBody) {
  const Graph g = PaperExampleGraph();
  Reads reads(Options());
  reads.Bind(&g);
  std::stringstream buffer;
  reads.SaveIndex(buffer);
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream truncated(bytes);
  std::string error;
  Reads other(Options());
  other.Bind(&g);
  EXPECT_FALSE(other.LoadIndex(truncated, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos);
  // The failed load must not have corrupted the usable index.
  const auto scores = other.SingleSource(0);
  EXPECT_DOUBLE_EQ(scores[0], 1.0);
}

TEST(ReadsPersistenceTest, LoadedIndexSupportsDeltas) {
  Rng rng(3);
  const Graph g = ErdosRenyi(30, 120, false, &rng);
  Reads reads(Options());
  reads.Bind(&g);
  std::stringstream buffer;
  reads.SaveIndex(buffer);
  Reads restored(Options());
  restored.Bind(&g);
  std::string error;
  ASSERT_TRUE(restored.LoadIndex(buffer, &error)) << error;
  // Apply a delta on top of the loaded index.
  EdgeDelta delta;
  delta.added = {{0, 29}};
  std::vector<Edge> edges = g.Edges();
  edges.push_back({0, 29});
  std::sort(edges.begin(), edges.end());
  const Graph g2 = BuildGraph(30, edges);
  restored.ApplyDelta(delta, &g2);
  const auto scores = restored.SingleSource(1);
  EXPECT_EQ(scores.size(), 30u);
}

}  // namespace
}  // namespace crashsim
