// Sampler correctness for the batch walk engine's two draw paths: the
// uniform fixed-point map used for in-neighbour steps and the
// DiscreteSampler backends used for the walk-length distribution. The
// exhaustive part pins the uniform exact-degeneracy contract (alias == CDF
// == UniformIndex on the same draw), the statistical part runs chi-squared
// goodness-of-fit of both backends against the exact target distributions —
// including in-neighbour distributions taken from star / skewed / uniform
// graph fixtures.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "graph/generators.h"
#include "simrank/alias_sampler.h"
#include "util/rng.h"

namespace crashsim {
namespace {

using Backend = DiscreteSampler::Backend;

// Upper chi-squared critical value via the Wilson-Hilferty cube
// approximation at z = 3.09 (one-sided p ~ 0.001): flaky-free at the fixed
// seeds below while still sensitive to real distribution bugs.
double ChiSquaredCritical(int dof) {
  const double d = static_cast<double>(dof);
  const double t = 1.0 - 2.0 / (9.0 * d) + 3.09 * std::sqrt(2.0 / (9.0 * d));
  return d * t * t * t;
}

// Chi-squared statistic of observed counts against expected probabilities,
// pooling outcomes with expected count < 5 into one cell (textbook validity
// condition for the asymptotic test).
double ChiSquared(const std::vector<int64_t>& counts,
                  const std::vector<double>& probs, int64_t draws,
                  int* dof_out) {
  double stat = 0.0;
  double pooled_obs = 0.0;
  double pooled_exp = 0.0;
  int cells = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const double expected = probs[i] * static_cast<double>(draws);
    if (expected < 5.0) {
      pooled_obs += static_cast<double>(counts[i]);
      pooled_exp += expected;
      continue;
    }
    const double diff = static_cast<double>(counts[i]) - expected;
    stat += diff * diff / expected;
    ++cells;
  }
  if (pooled_exp > 0.0) {
    const double diff = pooled_obs - pooled_exp;
    stat += diff * diff / pooled_exp;
    ++cells;
  }
  *dof_out = cells - 1;
  return stat;
}

void ExpectGoodFit(const DiscreteSampler& sampler,
                   const std::vector<double>& weights, uint64_t seed,
                   int64_t draws) {
  double total = 0.0;
  for (const double w : weights) total += w;
  std::vector<double> probs;
  probs.reserve(weights.size());
  for (const double w : weights) probs.push_back(w / total);
  std::vector<int64_t> counts(weights.size(), 0);
  uint64_t state = seed;
  for (int64_t i = 0; i < draws; ++i) {
    const uint32_t got = sampler.Sample(SplitMix64Next(state));
    ASSERT_LT(got, weights.size());
    ++counts[got];
  }
  int dof = 0;
  const double stat = ChiSquared(counts, probs, draws, &dof);
  ASSERT_GE(dof, 1);
  EXPECT_LT(stat, ChiSquaredCritical(dof))
      << "n=" << weights.size() << " draws=" << draws
      << " backend=" << static_cast<int>(sampler.backend());
}

TEST(AliasSamplerTest, UniformWeightsDegenerateToUniformIndexExactly) {
  // The contract the walk engine's bit-identity rests on: under all-equal
  // weights, BOTH backends reproduce UniformIndex(draw, n) on every draw.
  // Check each fixed-point threshold boundary +-1 (the only draws where an
  // off-by-one could hide) plus a random sample, for every n that the
  // kAuto crossover can produce on either side.
  for (uint64_t n = 1; n <= 48; ++n) {
    const std::vector<double> weights(static_cast<size_t>(n), 1.0);
    const DiscreteSampler cdf(weights, Backend::kCdf);
    const DiscreteSampler alias(weights, Backend::kAlias);
    std::vector<uint64_t> draws = {0, 1, UINT64_MAX - 1, UINT64_MAX};
    for (uint64_t i = 1; i < n; ++i) {
      // threshold_i = ceil(i * 2^64 / n), computed in 128-bit to avoid
      // overflow: the first draw mapping to outcome i.
      const unsigned __int128 exact =
          (static_cast<unsigned __int128>(i) << 64) + (n - 1);
      const uint64_t boundary = static_cast<uint64_t>(exact / n);
      draws.push_back(boundary - 1);
      draws.push_back(boundary);
      draws.push_back(boundary + 1);
    }
    uint64_t state = 0x5eed + n;
    for (int i = 0; i < 256; ++i) draws.push_back(SplitMix64Next(state));
    for (const uint64_t draw : draws) {
      const uint32_t want = DiscreteSampler::UniformIndex(draw, n);
      ASSERT_LT(want, n);
      EXPECT_EQ(cdf.Sample(draw), want) << "n=" << n << " draw=" << draw;
      EXPECT_EQ(alias.Sample(draw), want) << "n=" << n << " draw=" << draw;
    }
  }
}

TEST(AliasSamplerTest, BackendsDivergeOnNonUniformWeightsByDesign) {
  // Documented intentional divergence: same distribution, different
  // draw-to-outcome maps. If this ever starts passing with EXPECT_EQ the
  // backend choice silently stopped being part of the stream contract —
  // fail loudly so the contract doc gets updated in the same change.
  const std::vector<double> weights = {8.0, 4.0, 2.0, 1.0, 1.0};
  const DiscreteSampler cdf(weights, Backend::kCdf);
  const DiscreteSampler alias(weights, Backend::kAlias);
  uint64_t state = 7;
  int diverged = 0;
  for (int i = 0; i < 4096; ++i) {
    const uint64_t draw = SplitMix64Next(state);
    if (cdf.Sample(draw) != alias.Sample(draw)) ++diverged;
  }
  EXPECT_GT(diverged, 0);
}

TEST(AliasSamplerTest, AutoBackendResolvesBySupportSize) {
  const std::vector<double> small(DiscreteSampler::kAliasSupportThreshold - 1,
                                  1.0);
  const std::vector<double> large(DiscreteSampler::kAliasSupportThreshold,
                                  1.0);
  EXPECT_EQ(DiscreteSampler(small, Backend::kAuto).backend(), Backend::kCdf);
  EXPECT_EQ(DiscreteSampler(large, Backend::kAuto).backend(), Backend::kAlias);
}

TEST(AliasSamplerTest, ChiSquaredFitOnSkewedWeights) {
  // Geometric-ish, two-scale, and near-degenerate weight vectors; both
  // backends must fit the exact normalised target.
  const std::vector<std::vector<double>> fixtures = {
      {1.0, 0.5, 0.25, 0.125, 0.0625, 0.03125},
      {1000.0, 1.0, 1.0, 1.0},
      {0.7, 0.0, 0.3},  // zero-mass outcome must never be sampled
      TruncatedGeometricWeights(std::sqrt(0.6), 36),
  };
  uint64_t seed = 101;
  for (const std::vector<double>& weights : fixtures) {
    ExpectGoodFit(DiscreteSampler(weights, Backend::kCdf), weights, seed,
                  200000);
    ExpectGoodFit(DiscreteSampler(weights, Backend::kAlias), weights,
                  seed + 1, 200000);
    seed += 2;
  }
}

TEST(AliasSamplerTest, ZeroWeightOutcomesAreNeverSampled) {
  const std::vector<double> weights = {0.0, 1.0, 0.0, 2.0, 0.0};
  for (const Backend backend : {Backend::kCdf, Backend::kAlias}) {
    const DiscreteSampler sampler(weights, backend);
    uint64_t state = 13;
    for (int i = 0; i < 50000; ++i) {
      const uint32_t got = sampler.Sample(SplitMix64Next(state));
      EXPECT_TRUE(got == 1 || got == 3) << "backend=" << static_cast<int>(
          backend);
    }
    // Draw 0 must land in the first positive outcome. (The single top draw
    // UINT64_MAX is deliberately unchecked: thresholds clamp 2^64 to
    // UINT64_MAX, so kCdf maps that one draw to a trailing zero-weight
    // outcome — within the documented n / 2^64 quantisation.)
    EXPECT_EQ(sampler.Sample(0), 1u);
  }
}

TEST(AliasSamplerTest, UniformIndexFitsInNeighbourDistributions) {
  // The engine's in-neighbour step IS UniformIndex over the in-list; fit it
  // against the exact uniform in-degree distribution of the three fixture
  // shapes the walks actually see: a hub (star), a skewed degree sequence
  // (Barabasi-Albert) and a near-uniform one (Erdos-Renyi).
  Rng gen(17);
  const Graph star = StarGraph(32, true);  // undirected: hub in-degree 31
  const Graph skew = BarabasiAlbert(64, 3, false, &gen);
  const Graph er = ErdosRenyi(48, 192, false, &gen);
  uint64_t seed = 400;
  for (const Graph* g : {&star, &skew, &er}) {
    // Pick the highest in-degree node: the most cells, the sharpest test.
    NodeId v = 0;
    for (NodeId u = 0; u < g->num_nodes(); ++u) {
      if (g->InNeighbors(u).size() > g->InNeighbors(v).size()) v = u;
    }
    const size_t deg = g->InNeighbors(v).size();
    ASSERT_GE(deg, 2u);
    std::vector<int64_t> counts(deg, 0);
    const std::vector<double> probs(deg, 1.0 / static_cast<double>(deg));
    uint64_t state = seed++;
    const int64_t draws = 100000;
    for (int64_t i = 0; i < draws; ++i) {
      ++counts[DiscreteSampler::UniformIndex(SplitMix64Next(state), deg)];
    }
    int dof = 0;
    const double stat = ChiSquared(counts, probs, draws, &dof);
    EXPECT_LT(stat, ChiSquaredCritical(dof)) << "in-degree " << deg;
  }
}

TEST(AliasSamplerTest, TruncatedGeometricWeightsClosedForm) {
  const double p = std::sqrt(0.6);
  const int max_len = 9;
  const std::vector<double> w = TruncatedGeometricWeights(p, max_len);
  ASSERT_EQ(w.size(), static_cast<size_t>(max_len));
  double total = 0.0;
  for (const double x : w) total += x;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // P(len = l) = p^(l-1) (1 - p) below the truncation point...
  for (int l = 1; l < max_len; ++l) {
    EXPECT_NEAR(w[static_cast<size_t>(l - 1)],
                std::pow(p, l - 1) * (1.0 - p), 1e-12)
        << "l=" << l;
  }
  // ...and the whole tail collapses onto the last length.
  EXPECT_NEAR(w.back(), std::pow(p, max_len - 1), 1e-12);
}

TEST(AliasSamplerTest, TruncatedGeometricEmpiricalMeanMatches) {
  const double p = 0.5;
  const int max_len = 16;
  const std::vector<double> w = TruncatedGeometricWeights(p, max_len);
  double want_mean = 0.0;
  for (size_t i = 0; i < w.size(); ++i) {
    want_mean += static_cast<double>(i + 1) * w[i];
  }
  const DiscreteSampler sampler(w, Backend::kAuto);
  uint64_t state = 2026;
  const int64_t draws = 400000;
  double sum = 0.0;
  for (int64_t i = 0; i < draws; ++i) {
    sum += static_cast<double>(sampler.Sample(SplitMix64Next(state)) + 1);
  }
  const double got_mean = sum / static_cast<double>(draws);
  // Std error of the mean is ~ sigma / sqrt(draws) < 0.003 here; 0.02 gives
  // a > 6-sigma margin.
  EXPECT_NEAR(got_mean, want_mean, 0.02);
}

}  // namespace
}  // namespace crashsim
