// Property-style sweep: every estimator in the library must approximate the
// power-method ground truth on a family of random graphs. Bounds are loose
// (these are Monte-Carlo estimators run at test-sized budgets); the point is
// catching systematic bias or broken probability bookkeeping, not measuring
// precision — the benches do that.
#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/crashsim.h"
#include "graph/generators.h"
#include "simrank/monte_carlo.h"
#include "simrank/power_method.h"
#include "simrank/probesim.h"
#include "simrank/reads.h"
#include "simrank/simrank.h"
#include "simrank/sling.h"
#include "util/rng.h"

namespace crashsim {
namespace {

struct GraphCase {
  std::string name;
  Graph graph;
};

GraphCase MakeGraphCase(const std::string& name) {
  Rng rng(1234);
  if (name == "erdos_renyi_directed") {
    return {name, ErdosRenyi(60, 240, false, &rng)};
  }
  if (name == "erdos_renyi_undirected") {
    return {name, ErdosRenyi(60, 140, true, &rng)};
  }
  if (name == "barabasi_albert") {
    return {name, BarabasiAlbert(80, 3, false, &rng)};
  }
  if (name == "copying_model") {
    return {name, CopyingModel(70, 4, 0.5, &rng)};
  }
  return {name, PaperExampleGraph()};
}

std::unique_ptr<SimRankAlgorithm> MakeAlgorithm(const std::string& name) {
  SimRankOptions mc;
  mc.c = 0.6;
  mc.seed = 99;
  if (name == "probesim") {
    mc.trials_override = 8000;
    return std::make_unique<ProbeSim>(mc);
  }
  if (name == "pairwise_mc") {
    mc.trials_override = 8000;
    return std::make_unique<PairwiseMonteCarlo>(mc);
  }
  if (name == "sling") {
    auto sling = std::make_unique<Sling>(mc);
    sling->set_diag_samples(1500);
    return sling;
  }
  if (name == "crashsim_corrected" || name == "crashsim_paper") {
    CrashSimOptions opt;
    opt.mc = mc;
    opt.mc.trials_override = 8000;
    opt.mode = name == "crashsim_paper" ? RevReachMode::kPaper
                                        : RevReachMode::kCorrected;
    opt.diag_samples = 1500;
    return std::make_unique<CrashSim>(opt);
  }
  ReadsOptions ro;
  ro.r = 3000;
  ro.t = 12;
  ro.seed = 99;
  return std::make_unique<Reads>(ro);
}

double ErrorBudget(const std::string& algorithm) {
  // READS couples walks through shared pointers (known bias on cyclic
  // graphs); give it the loosest budget. The paper-verbatim CrashSim
  // recurrence is deliberately NOT in this sweep: its degree-skew bias
  // (DESIGN.md §3) reaches ME ~1 on skewed directed graphs, which is
  // characterised by bench_ablation_corrected and pinned by the targeted
  // star/Example-2 tests rather than bounded here.
  return algorithm == "reads" ? 0.10 : 0.06;
}

using Params = std::tuple<std::string, std::string>;  // (algorithm, graph)

class AccuracySweep : public testing::TestWithParam<Params> {};

TEST_P(AccuracySweep, MaxErrorWithinBudget) {
  const auto& [algo_name, graph_name] = GetParam();
  const GraphCase gc = MakeGraphCase(graph_name);
  const SimRankMatrix truth = PowerMethodAllPairs(gc.graph, 0.6, 55);
  auto algo = MakeAlgorithm(algo_name);
  algo->Bind(&gc.graph);

  Rng source_rng(7);
  const double budget = ErrorBudget(algo_name);
  for (int rep = 0; rep < 3; ++rep) {
    const NodeId u = static_cast<NodeId>(
        source_rng.NextBounded(static_cast<uint64_t>(gc.graph.num_nodes())));
    const auto scores = algo->SingleSource(u);
    double me = 0.0;
    for (NodeId v = 0; v < gc.graph.num_nodes(); ++v) {
      if (v == u) continue;
      me = std::max(me,
                    std::abs(scores[static_cast<size_t>(v)] - truth.At(u, v)));
    }
    EXPECT_LE(me, budget) << algo_name << " on " << graph_name << " source "
                          << u;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllGraphs, AccuracySweep,
    testing::Combine(testing::Values("probesim", "sling", "reads",
                                     "pairwise_mc", "crashsim_corrected"),
                     testing::Values("paper_example", "erdos_renyi_directed",
                                     "erdos_renyi_undirected",
                                     "barabasi_albert", "copying_model")),
    [](const testing::TestParamInfo<Params>& param_info) {
      return std::get<0>(param_info.param) + "_" + std::get<1>(param_info.param);
    });

}  // namespace
}  // namespace crashsim
