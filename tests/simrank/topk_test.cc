#include "simrank/topk.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "simrank/power_method.h"
#include "simrank/probesim.h"

namespace crashsim {
namespace {

// A deterministic "algorithm" for the query helpers: returns the exact
// power-method row, so top-k outcomes are fully predictable.
class ExactAlgorithm : public SimRankAlgorithm {
 public:
  std::string name() const override { return "Exact"; }
  void Bind(const Graph* g) override {
    set_graph(g);
    matrix_ = PowerMethodAllPairs(*g, 0.6, 55);
  }
  std::vector<double> SingleSource(NodeId u) override { return matrix_.Row(u); }

 private:
  SimRankMatrix matrix_;
};

TEST(TopKSimRankTest, ExcludesSourceAndSortsDescending) {
  const Graph g = PaperExampleGraph();
  ExactAlgorithm exact;
  exact.Bind(&g);
  const TopKResult top = TopKSimRank(&exact, 0, 3);
  ASSERT_EQ(top.size(), 3u);
  for (const auto& [score, node] : top) EXPECT_NE(node, 0);
  EXPECT_GE(top[0].first, top[1].first);
  EXPECT_GE(top[1].first, top[2].first);
}

TEST(TopKSimRankTest, MatchesExactRanking) {
  const Graph g = PaperExampleGraph();
  ExactAlgorithm exact;
  exact.Bind(&g);
  const auto row = exact.SingleSource(0);
  const TopKResult top = TopKSimRank(&exact, 0, 1);
  ASSERT_EQ(top.size(), 1u);
  double best = -1.0;
  NodeId best_node = -1;
  for (NodeId v = 1; v < 8; ++v) {
    if (row[static_cast<size_t>(v)] > best) {
      best = row[static_cast<size_t>(v)];
      best_node = v;
    }
  }
  EXPECT_EQ(top[0].second, best_node);
  EXPECT_DOUBLE_EQ(top[0].first, best);
}

TEST(TopKSimRankTest, KLargerThanGraphReturnsAll) {
  const Graph g = PaperExampleGraph();
  ExactAlgorithm exact;
  exact.Bind(&g);
  const TopKResult top = TopKSimRank(&exact, 0, 100);
  EXPECT_EQ(top.size(), 7u);  // everything but the source
}

TEST(TopKSimRankTest, CandidateRestrictedVariant) {
  const Graph g = PaperExampleGraph();
  ExactAlgorithm exact;
  exact.Bind(&g);
  const std::vector<NodeId> cands{1, 5, 6};
  const TopKResult top = TopKSimRank(&exact, 0, 2, cands);
  ASSERT_EQ(top.size(), 2u);
  for (const auto& [score, node] : top) {
    EXPECT_TRUE(node == 1 || node == 5 || node == 6);
  }
}

TEST(TopKSimRankTest, CandidateListContainingSourceSkipsIt) {
  const Graph g = PaperExampleGraph();
  ExactAlgorithm exact;
  exact.Bind(&g);
  const std::vector<NodeId> cands{0, 3};
  const TopKResult top = TopKSimRank(&exact, 0, 5, cands);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].second, 3);
}

TEST(TopKSimRankTest, WorksWithMonteCarloAlgorithms) {
  const Graph g = PaperExampleGraph();
  SimRankOptions mc;
  mc.trials_override = 20000;
  mc.seed = 5;
  ProbeSim probesim(mc);
  probesim.Bind(&g);
  ExactAlgorithm exact;
  exact.Bind(&g);
  // The MC top-1 should match the exact top-1 at this trial count.
  EXPECT_EQ(TopKSimRank(&probesim, 0, 1)[0].second,
            TopKSimRank(&exact, 0, 1)[0].second);
}

}  // namespace
}  // namespace crashsim
