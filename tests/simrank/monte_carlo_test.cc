#include "simrank/monte_carlo.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "simrank/power_method.h"

namespace crashsim {
namespace {

SimRankOptions Options(int64_t trials, uint64_t seed = 42) {
  SimRankOptions opt;
  opt.c = 0.6;
  opt.trials_override = trials;
  opt.seed = seed;
  return opt;
}

TEST(PairwiseMonteCarloTest, SelfScoreIsOne) {
  const Graph g = PaperExampleGraph();
  PairwiseMonteCarlo mc(Options(100));
  mc.Bind(&g);
  EXPECT_DOUBLE_EQ(mc.SingleSource(2)[2], 1.0);
}

TEST(PairwiseMonteCarloTest, UnbiasedOnExampleGraph) {
  const Graph g = PaperExampleGraph();
  const SimRankMatrix truth = PowerMethodAllPairs(g, 0.6, 55);
  PairwiseMonteCarlo mc(Options(30000));
  mc.Bind(&g);
  const auto scores = mc.SingleSource(0);
  for (NodeId v = 1; v < 8; ++v) {
    EXPECT_NEAR(scores[static_cast<size_t>(v)], truth.At(0, v), 0.02)
        << "node " << static_cast<int>(v);
  }
}

TEST(PairwiseMonteCarloTest, StarLeavesScoreExactlyC) {
  // The simplest closed form: leaf-leaf SimRank = c on an undirected star.
  const Graph g = StarGraph(6, /*undirected=*/true);
  PairwiseMonteCarlo mc(Options(30000));
  mc.Bind(&g);
  const auto scores = mc.SingleSource(1);
  EXPECT_NEAR(scores[2], 0.6, 0.02);
  EXPECT_NEAR(scores[0], 0.0, 1e-12);  // hub never meets a leaf in step
}

TEST(PairwiseMonteCarloTest, PartialScoresSubsetOnly) {
  const Graph g = PaperExampleGraph();
  PairwiseMonteCarlo mc(Options(500));
  mc.Bind(&g);
  const std::vector<NodeId> cands{0, 4};
  const auto partial = mc.Partial(0, cands);
  ASSERT_EQ(partial.size(), 2u);
  EXPECT_DOUBLE_EQ(partial[0], 1.0);  // source included
  EXPECT_GE(partial[1], 0.0);
}

TEST(PairwiseMonteCarloTest, DeterministicGivenSeed) {
  const Graph g = PaperExampleGraph();
  PairwiseMonteCarlo a(Options(300, 9));
  PairwiseMonteCarlo b(Options(300, 9));
  a.Bind(&g);
  b.Bind(&g);
  EXPECT_EQ(a.SingleSource(3), b.SingleSource(3));
}

TEST(PairwiseMonteCarloTest, ScoresAreTrialFractions) {
  const Graph g = PaperExampleGraph();
  PairwiseMonteCarlo mc(Options(40));
  mc.Bind(&g);
  for (double s : mc.SingleSource(1)) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
    EXPECT_NEAR(s * 40.0, std::round(s * 40.0), 1e-9);
  }
}

}  // namespace
}  // namespace crashsim
