#include "simrank/power_method.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "util/rng.h"

namespace crashsim {
namespace {

// Naive reference: the textbook Jeh & Widom recurrence evaluated pairwise.
std::vector<std::vector<double>> NaiveSimRank(const Graph& g, double c,
                                              int iterations) {
  const NodeId n = g.num_nodes();
  std::vector<std::vector<double>> s(n, std::vector<double>(n, 0.0));
  for (NodeId v = 0; v < n; ++v) s[v][v] = 1.0;
  for (int it = 0; it < iterations; ++it) {
    std::vector<std::vector<double>> next(n, std::vector<double>(n, 0.0));
    for (NodeId u = 0; u < n; ++u) {
      next[u][u] = 1.0;
      for (NodeId v = 0; v < n; ++v) {
        if (u == v) continue;
        const auto iu = g.InNeighbors(u);
        const auto iv = g.InNeighbors(v);
        if (iu.empty() || iv.empty()) continue;
        double acc = 0.0;
        for (NodeId x : iu) {
          for (NodeId y : iv) acc += s[x][y];
        }
        next[u][v] = c * acc / (static_cast<double>(iu.size()) *
                                static_cast<double>(iv.size()));
      }
    }
    s.swap(next);
  }
  return s;
}

TEST(PowerMethodTest, MatchesNaiveReferenceOnExampleGraph) {
  const Graph g = PaperExampleGraph();
  const SimRankMatrix fast = PowerMethodAllPairs(g, 0.25, 20);
  const auto naive = NaiveSimRank(g, 0.25, 20);
  for (NodeId u = 0; u < 8; ++u) {
    for (NodeId v = 0; v < 8; ++v) {
      EXPECT_NEAR(fast.At(u, v), naive[u][v], 1e-5) << u << "," << v;
    }
  }
}

TEST(PowerMethodTest, MatchesNaiveReferenceOnRandomGraph) {
  Rng rng(11);
  const Graph g = ErdosRenyi(25, 80, false, &rng);
  const SimRankMatrix fast = PowerMethodAllPairs(g, 0.6, 15);
  const auto naive = NaiveSimRank(g, 0.6, 15);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_NEAR(fast.At(u, v), naive[u][v], 1e-4) << u << "," << v;
    }
  }
}

TEST(PowerMethodTest, DiagonalIsOne) {
  const Graph g = PaperExampleGraph();
  const SimRankMatrix s = PowerMethodAllPairs(g, 0.6, 30);
  for (NodeId v = 0; v < 8; ++v) EXPECT_DOUBLE_EQ(s.At(v, v), 1.0);
}

TEST(PowerMethodTest, SymmetricAndBounded) {
  Rng rng(12);
  const Graph g = ErdosRenyi(40, 160, false, &rng);
  const SimRankMatrix s = PowerMethodAllPairs(g, 0.6, 30);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_NEAR(s.At(u, v), s.At(v, u), 1e-5);
      EXPECT_GE(s.At(u, v), 0.0);
      EXPECT_LE(s.At(u, v), 1.0 + 1e-6);
    }
  }
}

TEST(PowerMethodTest, StarGraphClosedForm) {
  // Undirected star: leaf-leaf similarity is exactly c, hub-leaf is 0.
  const Graph g = StarGraph(6, /*undirected=*/true);
  const SimRankMatrix s = PowerMethodAllPairs(g, 0.6, 40);
  EXPECT_NEAR(s.At(1, 2), 0.6, 1e-6);
  EXPECT_NEAR(s.At(3, 5), 0.6, 1e-6);
  EXPECT_NEAR(s.At(0, 1), 0.0, 1e-6);
}

TEST(PowerMethodTest, CompleteGraphClosedForm) {
  // K_n: s = c(n-2) / ((n-1)^2 - c((n-1)^2 - (n-2))); n=4, c=0.6 -> 0.25.
  const Graph g = CompleteGraph(4, /*undirected=*/true);
  const SimRankMatrix s = PowerMethodAllPairs(g, 0.6, 60);
  EXPECT_NEAR(s.At(0, 1), 0.25, 1e-5);
  EXPECT_NEAR(s.At(2, 3), 0.25, 1e-5);
}

TEST(PowerMethodTest, MutualEdgePairIsZero) {
  // 0 <-> 1: s(0,1) = c * s(1,0) has the unique fixed point 0.
  const Graph g = BuildGraph(2, {{0, 1}, {1, 0}});
  const SimRankMatrix s = PowerMethodAllPairs(g, 0.8, 50);
  EXPECT_NEAR(s.At(0, 1), 0.0, 1e-9);
}

TEST(PowerMethodTest, DeadEndNodesScoreZero) {
  // Node 0 has no in-neighbours: s(0, v) = 0 for all v != 0.
  const Graph g = BuildGraph(3, {{0, 1}, {0, 2}, {1, 2}});
  const SimRankMatrix s = PowerMethodAllPairs(g, 0.6, 30);
  EXPECT_DOUBLE_EQ(s.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(s.At(0, 2), 0.0);
  EXPECT_GT(s.At(1, 2), 0.0);  // both have in-neighbour 0
}

TEST(PowerMethodTest, ConvergedByPaperIterationCount) {
  // 55 iterations (the paper's ground-truth depth) vs 70: difference below
  // float resolution at c = 0.6 (residual <= c^55 ~ 6e-13).
  const Graph g = PaperExampleGraph();
  const SimRankMatrix a = PowerMethodAllPairs(g, 0.6, 55);
  const SimRankMatrix b = PowerMethodAllPairs(g, 0.6, 70);
  for (NodeId u = 0; u < 8; ++u) {
    for (NodeId v = 0; v < 8; ++v) {
      EXPECT_NEAR(a.At(u, v), b.At(u, v), 1e-6);
    }
  }
}

TEST(PowerMethodTest, SingleSourceMatchesMatrixRow) {
  const Graph g = PaperExampleGraph();
  const SimRankMatrix s = PowerMethodAllPairs(g, 0.25, 30);
  const std::vector<double> row = PowerMethodSingleSource(g, 0, 0.25, 30);
  ASSERT_EQ(row.size(), 8u);
  for (NodeId v = 0; v < 8; ++v) EXPECT_NEAR(row[v], s.At(0, v), 1e-7);
}

TEST(PowerMethodTest, ZeroIterationsIsIdentity) {
  const Graph g = PaperExampleGraph();
  const SimRankMatrix s = PowerMethodAllPairs(g, 0.6, 0);
  for (NodeId u = 0; u < 8; ++u) {
    for (NodeId v = 0; v < 8; ++v) {
      EXPECT_DOUBLE_EQ(s.At(u, v), u == v ? 1.0 : 0.0);
    }
  }
}

TEST(SimRankMatrixTest, RowCopy) {
  SimRankMatrix m(3);
  m.Set(1, 2, 0.5);
  const auto row = m.Row(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_DOUBLE_EQ(row[2], 0.5);
  EXPECT_DOUBLE_EQ(row[0], 0.0);
}

}  // namespace
}  // namespace crashsim
