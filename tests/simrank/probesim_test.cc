#include "simrank/probesim.h"

#include <chrono>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "simrank/power_method.h"
#include "simrank/walk.h"

namespace crashsim {
namespace {

SimRankOptions FastOptions(int64_t trials, uint64_t seed = 42) {
  SimRankOptions opt;
  opt.c = 0.6;
  opt.trials_override = trials;
  opt.seed = seed;
  return opt;
}

TEST(ProbeSimTest, SelfScoreIsOne) {
  const Graph g = PaperExampleGraph();
  ProbeSim algo(FastOptions(100));
  algo.Bind(&g);
  const auto scores = algo.SingleSource(0);
  EXPECT_DOUBLE_EQ(scores[0], 1.0);
}

TEST(ProbeSimTest, ScoresInUnitInterval) {
  const Graph g = PaperExampleGraph();
  ProbeSim algo(FastOptions(500));
  algo.Bind(&g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (double s : algo.SingleSource(u)) {
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
  }
}

TEST(ProbeSimTest, DeterministicGivenSeed) {
  const Graph g = PaperExampleGraph();
  ProbeSim a(FastOptions(200, 7));
  ProbeSim b(FastOptions(200, 7));
  a.Bind(&g);
  b.Bind(&g);
  EXPECT_EQ(a.SingleSource(2), b.SingleSource(2));
}

TEST(ProbeSimTest, ApproximatesGroundTruthOnExampleGraph) {
  const Graph g = PaperExampleGraph();
  const SimRankMatrix truth = PowerMethodAllPairs(g, 0.6, 55);
  ProbeSim algo(FastOptions(20000));
  algo.Bind(&g);
  const auto scores = algo.SingleSource(0);
  for (NodeId v = 1; v < 8; ++v) {
    EXPECT_NEAR(scores[v], truth.At(0, v), 0.03) << "node " << v;
  }
}

TEST(ProbeSimTest, ApproximatesGroundTruthOnRandomGraph) {
  Rng rng(3);
  const Graph g = ErdosRenyi(40, 160, false, &rng);
  const SimRankMatrix truth = PowerMethodAllPairs(g, 0.6, 55);
  ProbeSim algo(FastOptions(15000));
  algo.Bind(&g);
  const auto scores = algo.SingleSource(5);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == 5) continue;
    EXPECT_NEAR(scores[v], truth.At(5, v), 0.04) << "node " << v;
  }
}

TEST(ProbeSimTest, SourceWithNoInNeighborsScoresZero) {
  const Graph g = BuildGraph(3, {{0, 1}, {0, 2}});
  ProbeSim algo(FastOptions(500));
  algo.Bind(&g);
  const auto scores = algo.SingleSource(0);
  EXPECT_DOUBLE_EQ(scores[1], 0.0);
  EXPECT_DOUBLE_EQ(scores[2], 0.0);
}

TEST(ProbeSimTest, PartialDefaultGathersFromSingleSource) {
  const Graph g = PaperExampleGraph();
  ProbeSim algo(FastOptions(300, 9));
  algo.Bind(&g);
  ProbeSim algo2(FastOptions(300, 9));
  algo2.Bind(&g);
  const auto all = algo.SingleSource(1);
  const std::vector<NodeId> cands{2, 5, 7};
  const auto partial = algo2.Partial(1, cands);
  ASSERT_EQ(partial.size(), 3u);
  for (size_t i = 0; i < cands.size(); ++i) {
    EXPECT_DOUBLE_EQ(partial[i], all[static_cast<size_t>(cands[i])]);
  }
}

TEST(ProbeSimTest, TrialsForHonoursOverrideAndCap) {
  SimRankOptions opt;
  opt.trials_override = 123;
  ProbeSim a(opt);
  EXPECT_EQ(a.TrialsFor(1000), 123);

  SimRankOptions capped;
  capped.trials_override = 0;
  capped.trials_cap = 50;
  ProbeSim b(capped);
  EXPECT_EQ(b.TrialsFor(1000), 50);

  SimRankOptions uncapped;
  uncapped.trials_cap = 0;
  ProbeSim c(uncapped);
  EXPECT_EQ(c.TrialsFor(1000),
            ProbeSimTrialCount(uncapped.c, uncapped.epsilon, uncapped.delta,
                               1000));
}

TEST(ProbeSimTest, RebindResetsToNewGraph) {
  const Graph g1 = PaperExampleGraph();
  const Graph g2 = CycleGraph(4, false);
  ProbeSim algo(FastOptions(100));
  algo.Bind(&g1);
  EXPECT_EQ(algo.SingleSource(0).size(), 8u);
  algo.Bind(&g2);
  EXPECT_EQ(algo.SingleSource(0).size(), 4u);
}

// ---- Context-aware (anytime) entry point ----

TEST(ProbeSimContextTest, CompleteRunMatchesLegacyEntryPoint) {
  const Graph g = PaperExampleGraph();
  ProbeSim legacy(FastOptions(200));
  legacy.Bind(&g);
  const std::vector<double> expected = legacy.SingleSource(0);

  ProbeSim algo(FastOptions(200));
  algo.Bind(&g);
  QueryContext ctx;
  const PartialResult result = algo.SingleSource(0, &ctx);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.trials_done, 200);
  EXPECT_EQ(result.scores, expected);
  EXPECT_DOUBLE_EQ(result.epsilon_achieved, FastOptions(200).epsilon);
}

TEST(ProbeSimContextTest, ExpiredDeadlineYieldsNonEmptyPartialPrefix) {
  const Graph g = PaperExampleGraph();
  ProbeSim algo(FastOptions(100000));
  algo.Bind(&g);
  QueryContext ctx(std::chrono::milliseconds(0));  // already expired
  const PartialResult result = algo.SingleSource(0, &ctx);
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  // The first trial block always completes before the first checkpoint.
  EXPECT_GE(result.trials_done, 1);
  EXPECT_LT(result.trials_done, 100000);
  EXPECT_DOUBLE_EQ(result.scores[0], 1.0);
  EXPECT_GT(result.epsilon_achieved, FastOptions(1).epsilon);
}

TEST(ProbeSimContextTest, PartialPrefixIsExactResultOfTrialsDone) {
  // The anytime contract: a cancelled run's scores are bit-identical to a
  // fresh complete run of trials_done trials with the same seed.
  const Graph g = PaperExampleGraph();
  ProbeSim algo(FastOptions(50000));
  algo.Bind(&g);
  QueryContext ctx(std::chrono::milliseconds(0));
  const PartialResult partial = algo.SingleSource(0, &ctx);
  ASSERT_GE(partial.trials_done, 1);

  ProbeSim replay(FastOptions(partial.trials_done));
  replay.Bind(&g);
  QueryContext fresh;
  const PartialResult full = replay.SingleSource(0, &fresh);
  ASSERT_TRUE(full.status.ok());
  EXPECT_EQ(partial.scores, full.scores);
}

TEST(ProbeSimContextTest, CancellationStopsBetweenBlocks) {
  const Graph g = PaperExampleGraph();
  ProbeSim algo(FastOptions(100000));
  algo.Bind(&g);
  QueryContext ctx;
  ctx.Cancel();
  const PartialResult result = algo.SingleSource(0, &ctx);
  EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
  EXPECT_GE(result.trials_done, 1);
  EXPECT_LT(result.trials_done, 100000);
}

TEST(ProbeSimContextTest, TrialFractionShrinksTheBudget) {
  const Graph g = PaperExampleGraph();
  ProbeSim algo(FastOptions(1000));
  algo.Bind(&g);
  QueryContext ctx;
  ctx.set_trial_fraction(0.25);
  const PartialResult result = algo.SingleSource(0, &ctx);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.trials_target, 250);
  EXPECT_EQ(result.trials_done, 250);
  // The reported bound loosens by sqrt(full / done) = 2.
  EXPECT_NEAR(result.epsilon_achieved, FastOptions(1000).epsilon * 2.0, 1e-12);
}

TEST(ProbeSimContextTest, InvalidSourceIsInvalidArgument) {
  const Graph g = PaperExampleGraph();
  ProbeSim algo(FastOptions(10));
  algo.Bind(&g);
  QueryContext ctx;
  const PartialResult result = algo.SingleSource(999, &ctx);
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(result.scores.empty());
}

}  // namespace
}  // namespace crashsim
