#include "simrank/walk.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace crashsim {
namespace {

TEST(SampleWalkTest, StartsAtSource) {
  const Graph g = CycleGraph(5, false);
  Rng rng(1);
  std::vector<NodeId> walk;
  SampleSqrtCWalk(g, 2, std::sqrt(0.6), 10, &rng, &walk);
  ASSERT_GE(walk.size(), 1u);
  EXPECT_EQ(walk[0], 2);
}

TEST(SampleWalkTest, RespectsMaxLength) {
  const Graph g = CycleGraph(5, false);
  Rng rng(2);
  std::vector<NodeId> walk;
  for (int i = 0; i < 1000; ++i) {
    const int len = SampleSqrtCWalk(g, 0, 0.999, 7, &rng, &walk);
    EXPECT_LE(len, 7);
    EXPECT_EQ(len, static_cast<int>(walk.size()));
  }
}

TEST(SampleWalkTest, StepsFollowInNeighbors) {
  const Graph g = PaperExampleGraph();
  Rng rng(3);
  std::vector<NodeId> walk;
  for (int i = 0; i < 500; ++i) {
    SampleSqrtCWalk(g, 0, std::sqrt(0.6), 35, &rng, &walk);
    for (size_t j = 1; j < walk.size(); ++j) {
      const auto in = g.InNeighbors(walk[j - 1]);
      EXPECT_TRUE(std::find(in.begin(), in.end(), walk[j]) != in.end())
          << "step " << j;
    }
  }
}

TEST(SampleWalkTest, DeadEndStopsWalk) {
  // 0 has no in-neighbours.
  const Graph g = BuildGraph(2, {{0, 1}});
  Rng rng(4);
  std::vector<NodeId> walk;
  EXPECT_EQ(SampleSqrtCWalk(g, 0, 0.99, 10, &rng, &walk), 1);
}

TEST(SampleWalkTest, LengthDistributionIsGeometric) {
  // On a cycle every node has one in-neighbour, so length is purely the
  // stopping rule: E[len] = 1/(1 - sqrt c) when uncapped.
  const Graph g = CycleGraph(3, false);
  const double sqrt_c = std::sqrt(0.6);
  Rng rng(5);
  std::vector<NodeId> walk;
  double sum = 0.0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    sum += SampleSqrtCWalk(g, 0, sqrt_c, 1000, &rng, &walk);
  }
  EXPECT_NEAR(sum / kN, 1.0 / (1.0 - sqrt_c), 0.05);
}

TEST(LMaxTest, MatchesClosedFormAtPaperParameters) {
  // c = 0.6: (1 + 0.7746)/(1 - 0.7746)^2 = 34.93... -> 35.
  EXPECT_EQ(CrashSimLMax(0.6), 35);
  // c = 0.25 (the worked example): (1.5)/(0.25) = 6.
  EXPECT_EQ(CrashSimLMax(0.25), 6);
  // c = 0.8: (1.8944)/(0.011146) -> 170.
  const double sq = std::sqrt(0.8);
  const int expected =
      static_cast<int>(std::ceil((1 + sq) / ((1 - sq) * (1 - sq))));
  EXPECT_EQ(CrashSimLMax(0.8), expected);
}

TEST(TruncationTest, MassPlusErrorIsOne) {
  for (double c : {0.25, 0.6, 0.8}) {
    const int l = CrashSimLMax(c);
    EXPECT_NEAR(CrashSimTruncationMass(c, l) + CrashSimTruncationError(c, l),
                1.0, 1e-12);
    EXPECT_GT(CrashSimTruncationMass(c, l), 0.98);
  }
}

TEST(TrialCountTest, FormulasAndMonotonicity) {
  // CrashSim needs slightly more trials than ProbeSim at equal epsilon
  // (denominator epsilon - p*eps_t < epsilon), by a constant factor.
  const int64_t crash = CrashSimTrialCount(0.6, 0.025, 0.01, 10000);
  const int64_t probe = ProbeSimTrialCount(0.6, 0.025, 0.01, 10000);
  EXPECT_GT(crash, probe);
  EXPECT_LT(crash, probe * 2);
  // Tighter epsilon means more trials.
  EXPECT_GT(CrashSimTrialCount(0.6, 0.0125, 0.01, 10000),
            CrashSimTrialCount(0.6, 0.025, 0.01, 10000));
  // Bigger graphs need more trials (log n).
  EXPECT_GT(CrashSimTrialCount(0.6, 0.025, 0.01, 100000),
            CrashSimTrialCount(0.6, 0.025, 0.01, 100));
}

TEST(TrialCountTest, ProbeSimClosedForm) {
  // n_r' = 3c/eps^2 * log(n/delta).
  const double expected = 3.0 * 0.6 / (0.05 * 0.05) * std::log(1000 / 0.1);
  EXPECT_EQ(ProbeSimTrialCount(0.6, 0.05, 0.1, 1000),
            static_cast<int64_t>(std::ceil(expected)));
}

TEST(DiagonalCorrectionTest, RangeAndDeadEnds) {
  const Graph g = PaperExampleGraph();
  Rng rng(6);
  const auto d = EstimateDiagonalCorrections(g, 0.6, 200, 36, &rng);
  ASSERT_EQ(d.size(), 8u);
  for (double x : d) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(DiagonalCorrectionTest, IsolatedNodeIsOne) {
  // Node 2 has no in-edges: walks stop instantly, never meet again.
  const Graph g = BuildGraph(3, {{2, 0}, {0, 1}});
  Rng rng(7);
  const auto d = EstimateDiagonalCorrections(g, 0.6, 100, 20, &rng);
  EXPECT_DOUBLE_EQ(d[2], 1.0);
}

TEST(DiagonalCorrectionTest, SingleInNeighbourForcesMeeting) {
  // On a directed cycle both walks always step to the same in-neighbour, so
  // they re-meet whenever both survive one step: d = Pr[at least one stops]
  // = 1 - c.
  const Graph g = CycleGraph(4, false);
  Rng rng(8);
  const auto d = EstimateDiagonalCorrections(g, 0.6, 20000, 64, &rng);
  EXPECT_NEAR(d[0], 1.0 - 0.6, 0.02);
}

}  // namespace
}  // namespace crashsim
