#include "simrank/sling.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "simrank/power_method.h"

namespace crashsim {
namespace {

SimRankOptions Options(uint64_t seed = 42) {
  SimRankOptions opt;
  opt.c = 0.6;
  opt.epsilon = 0.025;
  opt.seed = seed;
  return opt;
}

TEST(SlingTest, SelfScoreIsOne) {
  const Graph g = PaperExampleGraph();
  Sling algo(Options());
  algo.Bind(&g);
  EXPECT_DOUBLE_EQ(algo.SingleSource(3)[3], 1.0);
}

TEST(SlingTest, ScoresInUnitInterval) {
  const Graph g = PaperExampleGraph();
  Sling algo(Options());
  algo.Bind(&g);
  for (NodeId u = 0; u < 8; ++u) {
    for (double s : algo.SingleSource(u)) {
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0 + 1e-9);
    }
  }
}

TEST(SlingTest, IndexIsBuiltOnBind) {
  const Graph g = PaperExampleGraph();
  Sling algo(Options());
  algo.Bind(&g);
  EXPECT_GT(algo.index_stats().reverse_entries, 0);
  EXPECT_GE(algo.index_stats().build_seconds, 0.0);
}

TEST(SlingTest, ApproximatesGroundTruthOnExampleGraph) {
  const Graph g = PaperExampleGraph();
  const SimRankMatrix truth = PowerMethodAllPairs(g, 0.6, 55);
  Sling algo(Options());
  algo.set_diag_samples(3000);
  algo.Bind(&g);
  for (NodeId u : {0, 3, 6}) {
    const auto scores = algo.SingleSource(u);
    for (NodeId v = 0; v < 8; ++v) {
      if (v == u) continue;
      EXPECT_NEAR(scores[static_cast<size_t>(v)], truth.At(u, v), 0.04)
          << u << "->" << v;
    }
  }
}

TEST(SlingTest, ApproximatesGroundTruthOnRandomGraph) {
  Rng rng(5);
  const Graph g = ErdosRenyi(50, 200, false, &rng);
  const SimRankMatrix truth = PowerMethodAllPairs(g, 0.6, 55);
  Sling algo(Options());
  algo.set_diag_samples(2000);
  algo.Bind(&g);
  const auto scores = algo.SingleSource(7);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == 7) continue;
    EXPECT_NEAR(scores[static_cast<size_t>(v)], truth.At(7, v), 0.05)
        << "node " << v;
  }
}

TEST(SlingTest, SymmetryApproximatelyHolds) {
  // s(u,v) from u's query should match s(v,u) from v's query (both estimate
  // the same symmetric quantity through the same index).
  const Graph g = PaperExampleGraph();
  Sling algo(Options());
  algo.set_diag_samples(2000);
  algo.Bind(&g);
  const auto from1 = algo.SingleSource(1);
  const auto from4 = algo.SingleSource(4);
  EXPECT_NEAR(from1[4], from4[1], 0.02);
}

TEST(SlingTest, DeterministicGivenSeed) {
  const Graph g = PaperExampleGraph();
  Sling a(Options(11));
  Sling b(Options(11));
  a.Bind(&g);
  b.Bind(&g);
  EXPECT_EQ(a.SingleSource(2), b.SingleSource(2));
}

TEST(SlingTest, RebuildOnRebindReflectsNewGraph) {
  const Graph g1 = PaperExampleGraph();
  Sling algo(Options());
  algo.Bind(&g1);
  const int64_t entries1 = algo.index_stats().reverse_entries;
  const Graph g2 = CycleGraph(3, false);
  algo.Bind(&g2);
  EXPECT_NE(algo.index_stats().reverse_entries, entries1);
  EXPECT_EQ(algo.SingleSource(0).size(), 3u);
}

}  // namespace
}  // namespace crashsim
