#include <sstream>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "simrank/sling.h"
#include "util/rng.h"

namespace crashsim {
namespace {

SimRankOptions Options(uint64_t seed = 42) {
  SimRankOptions opt;
  opt.seed = seed;
  return opt;
}

TEST(SlingPersistenceTest, RoundTripReproducesScoresExactly) {
  Rng rng(1);
  const Graph g = ErdosRenyi(50, 200, false, &rng);
  Sling original(Options());
  original.Bind(&g);
  const auto scores = original.SingleSource(5);

  std::stringstream buffer;
  original.SaveIndex(buffer);

  // Different seed would give different d(w); the load restores the original
  // index, so queries match bit-for-bit (SLING queries draw no randomness).
  Sling restored(Options(1234));
  restored.Bind(&g);
  std::string error;
  ASSERT_TRUE(restored.LoadIndex(buffer, &error)) << error;
  EXPECT_EQ(restored.SingleSource(5), scores);
  EXPECT_EQ(restored.index_stats().reverse_entries,
            original.index_stats().reverse_entries);
}

TEST(SlingPersistenceTest, RejectsBadMagic) {
  const Graph g = PaperExampleGraph();
  Sling sling(Options());
  sling.Bind(&g);
  std::stringstream buffer("garbage bytes here");
  std::string error;
  EXPECT_FALSE(sling.LoadIndex(buffer, &error));
  EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST(SlingPersistenceTest, RejectsNodeCountMismatch) {
  const Graph g1 = PaperExampleGraph();
  Sling a(Options());
  a.Bind(&g1);
  std::stringstream buffer;
  a.SaveIndex(buffer);

  const Graph g2 = CycleGraph(5, false);
  Sling b(Options());
  b.Bind(&g2);
  std::string error;
  EXPECT_FALSE(b.LoadIndex(buffer, &error));
  EXPECT_NE(error.find("mismatch"), std::string::npos);
}

TEST(SlingPersistenceTest, RejectsTruncatedStreamAndKeepsIndexUsable) {
  Rng rng(2);
  const Graph g = ErdosRenyi(30, 120, false, &rng);
  Sling sling(Options());
  sling.Bind(&g);
  std::stringstream buffer;
  sling.SaveIndex(buffer);
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() * 3 / 4);
  std::stringstream truncated(bytes);

  Sling other(Options(7));
  other.Bind(&g);
  const auto before = other.SingleSource(3);
  std::string error;
  EXPECT_FALSE(other.LoadIndex(truncated, &error));
  // Failed load leaves the previously built index intact.
  EXPECT_EQ(other.SingleSource(3), before);
}

}  // namespace
}  // namespace crashsim
