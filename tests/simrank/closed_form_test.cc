// Closed-form SimRank values swept across every consistent estimator and
// several decay factors. Two families with known exact answers:
//  * undirected star: s(leaf_i, leaf_j) = c, s(hub, leaf) = 0;
//  * complete graph K_n: s(u, v) = c(n-2) / ((n-1)^2 - c((n-1)^2 - (n-2))).
#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/crashsim.h"
#include "graph/generators.h"
#include "simrank/monte_carlo.h"
#include "simrank/probesim.h"
#include "simrank/simrank.h"
#include "simrank/sling.h"

namespace crashsim {
namespace {

std::unique_ptr<SimRankAlgorithm> MakeEstimator(const std::string& name,
                                                double c) {
  SimRankOptions mc;
  mc.c = c;
  mc.trials_override = 30000;
  mc.seed = 77;
  if (name == "probesim") return std::make_unique<ProbeSim>(mc);
  if (name == "pairwise_mc") return std::make_unique<PairwiseMonteCarlo>(mc);
  if (name == "sling") {
    auto sling = std::make_unique<Sling>(mc);
    sling->set_diag_samples(4000);
    return sling;
  }
  CrashSimOptions opt;
  opt.mc = mc;
  opt.mode = RevReachMode::kCorrected;
  opt.diag_samples = 4000;
  return std::make_unique<CrashSim>(opt);
}

using Params = std::tuple<std::string, double>;  // (estimator, c)

class ClosedFormSweep : public testing::TestWithParam<Params> {};

TEST_P(ClosedFormSweep, StarLeafPairsScoreC) {
  const auto& [name, c] = GetParam();
  const Graph g = StarGraph(7, /*undirected=*/true);
  auto algo = MakeEstimator(name, c);
  algo->Bind(&g);
  const auto scores = algo->SingleSource(1);
  for (NodeId v = 2; v < 7; ++v) {
    EXPECT_NEAR(scores[static_cast<size_t>(v)], c, 0.025)
        << name << " c=" << c << " leaf " << static_cast<int>(v);
  }
  EXPECT_NEAR(scores[0], 0.0, 0.02) << name << " hub";
}

TEST_P(ClosedFormSweep, CompleteGraphPairFormula) {
  const auto& [name, c] = GetParam();
  const NodeId n = 5;
  const Graph g = CompleteGraph(n, /*undirected=*/true);
  const double nm1 = n - 1;
  const double exact =
      c * (n - 2) / (nm1 * nm1 - c * (nm1 * nm1 - (n - 2)));
  auto algo = MakeEstimator(name, c);
  algo->Bind(&g);
  const auto scores = algo->SingleSource(0);
  for (NodeId v = 1; v < n; ++v) {
    EXPECT_NEAR(scores[static_cast<size_t>(v)], exact, 0.03)
        << name << " c=" << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    EstimatorsTimesDecay, ClosedFormSweep,
    testing::Combine(testing::Values("crashsim_corrected", "probesim",
                                     "pairwise_mc", "sling"),
                     testing::Values(0.4, 0.6, 0.8)),
    [](const testing::TestParamInfo<Params>& param_info) {
      const int c_tag =
          static_cast<int>(std::get<1>(param_info.param) * 100 + 0.5);
      return std::get<0>(param_info.param) + "_c" + std::to_string(c_tag);
    });

}  // namespace
}  // namespace crashsim
