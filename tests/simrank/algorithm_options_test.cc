// Behavioural tests of the tuning knobs each algorithm exposes: thresholds,
// sample counts, walk caps. Each test pins the *direction* a knob moves
// accuracy or work, not absolute values.
#include <cmath>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "graph/generators.h"
#include "simrank/power_method.h"
#include "simrank/probesim.h"
#include "simrank/reads.h"
#include "simrank/sling.h"
#include "simrank/walk.h"
#include "util/rng.h"

namespace crashsim {
namespace {

Graph TestGraph() {
  Rng rng(21);
  return ErdosRenyi(60, 240, false, &rng);
}

TEST(ProbeSimOptionsTest, CoarsePruneThresholdOnlyDropsMass) {
  // Probe pruning discards probability mass, so a coarse threshold can only
  // lower scores (never raise them) relative to a fine one at equal seeds.
  const Graph g = TestGraph();
  SimRankOptions mc;
  mc.trials_override = 2000;
  mc.seed = 5;
  ProbeSim fine(mc);
  fine.set_prune_threshold(0.0);
  fine.Bind(&g);
  ProbeSim coarse(mc);
  coarse.set_prune_threshold(0.01);
  coarse.Bind(&g);
  const auto f = fine.SingleSource(2);
  const auto c = coarse.SingleSource(2);
  for (size_t v = 0; v < f.size(); ++v) {
    EXPECT_LE(c[v], f[v] + 1e-12) << "node " << v;
  }
}

TEST(ProbeSimOptionsTest, DirectedCyclePhasesNeverMeet) {
  // On a directed cycle, walks from distinct nodes keep distinct phases
  // forever, so every pairwise SimRank is exactly 0 — and the estimator must
  // report exactly 0, not merely something small.
  const Graph g = CycleGraph(8, false);
  SimRankOptions mc;
  mc.trials_override = 3000;
  ProbeSim algo(mc);
  algo.Bind(&g);
  const auto scores = algo.SingleSource(0);
  for (NodeId v = 1; v < 8; ++v) EXPECT_EQ(scores[static_cast<size_t>(v)], 0.0);
}

TEST(SlingOptionsTest, FinerThresholdImprovesAccuracy) {
  const Graph g = TestGraph();
  const SimRankMatrix truth = PowerMethodAllPairs(g, 0.6, 55);
  SimRankOptions mc;
  mc.seed = 7;
  Sling coarse(mc);
  coarse.set_prune_threshold(0.05);
  coarse.set_diag_samples(2000);
  coarse.Bind(&g);
  Sling fine(mc);
  fine.set_prune_threshold(0.001);
  fine.set_diag_samples(2000);
  fine.Bind(&g);
  const auto truth_row = truth.Row(4);
  const double me_coarse = MaxError(coarse.SingleSource(4), truth_row, 4);
  const double me_fine = MaxError(fine.SingleSource(4), truth_row, 4);
  EXPECT_LT(me_fine, me_coarse);
}

TEST(SlingOptionsTest, FinerThresholdGrowsIndex) {
  const Graph g = TestGraph();
  SimRankOptions mc;
  Sling coarse(mc);
  coarse.set_prune_threshold(0.05);
  coarse.Bind(&g);
  Sling fine(mc);
  fine.set_prune_threshold(0.001);
  fine.Bind(&g);
  EXPECT_GT(fine.index_stats().reverse_entries,
            coarse.index_stats().reverse_entries);
}

TEST(ReadsOptionsTest, MoreSamplesReduceError) {
  const Graph g = PaperExampleGraph();
  const SimRankMatrix truth = PowerMethodAllPairs(g, 0.6, 55);
  const auto truth_row = truth.Row(0);
  double me_small_total = 0.0;
  double me_large_total = 0.0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    ReadsOptions small;
    small.r = 50;
    small.seed = seed;
    Reads rs(small);
    rs.Bind(&g);
    me_small_total += MaxError(rs.SingleSource(0), truth_row, 0);
    ReadsOptions large;
    large.r = 5000;
    large.seed = seed;
    Reads rl(large);
    rl.Bind(&g);
    me_large_total += MaxError(rl.SingleSource(0), truth_row, 0);
  }
  EXPECT_LT(me_large_total, me_small_total);
}

TEST(ReadsOptionsTest, ZeroRQStillWorks) {
  const Graph g = PaperExampleGraph();
  ReadsOptions opt;
  opt.r_q = 0;
  Reads reads(opt);
  reads.Bind(&g);
  const auto scores = reads.SingleSource(1);
  EXPECT_DOUBLE_EQ(scores[1], 1.0);
  for (double s : scores) EXPECT_LE(s, 1.0);
}

TEST(PowerMethodGuardTest, NodeCapViolationDies) {
  Rng rng(9);
  const Graph g = ErdosRenyi(50, 100, false, &rng);
  EXPECT_DEATH(PowerMethodAllPairs(g, 0.6, 5, /*max_nodes=*/10),
               "CHECK failed");
}

TEST(WalkFormulaGuardTest, InvalidParametersDie) {
  EXPECT_DEATH(CrashSimLMax(0.0), "CHECK failed");
  EXPECT_DEATH(CrashSimLMax(1.0), "CHECK failed");
  EXPECT_DEATH(CrashSimTrialCount(0.6, 0.0, 0.01, 100), "CHECK failed");
  EXPECT_DEATH(CrashSimTrialCount(0.6, 0.025, 1.5, 100), "CHECK failed");
}

}  // namespace
}  // namespace crashsim
