// Structural-regime properties of the dataset stand-ins: each must land in
// the degree/connectivity regime of the SNAP original it substitutes for
// (the property that matters for sqrt(c)-walk behaviour, DESIGN.md §2).
#include <gtest/gtest.h>

#include "datasets/datasets.h"
#include "graph/analysis.h"

namespace crashsim {
namespace {

GraphStats StatsFor(const std::string& name, double scale = 0.03) {
  const Dataset ds = MakeDataset(name, scale, /*snapshots_override=*/5);
  return AnalyzeGraph(ds.static_graph);
}

TEST(DatasetRegimesTest, As733IsSymmetricAndSparse) {
  const GraphStats s = StatsFor("as733");
  EXPECT_DOUBLE_EQ(s.reciprocity, 1.0);  // undirected storage
  const double avg_degree =
      static_cast<double>(s.num_edges) / s.num_nodes;  // directed count
  EXPECT_GT(avg_degree, 2.5);
  EXPECT_LT(avg_degree, 6.0);  // original: 2 * 2.04
}

TEST(DatasetRegimesTest, WikiVoteIsDenseDirectedAndSkewed) {
  const GraphStats s = StatsFor("wiki-vote");
  EXPECT_LT(s.reciprocity, 0.7);  // genuinely directed
  const double avg_in = static_cast<double>(s.num_edges) / s.num_nodes;
  EXPECT_GT(avg_in, 8.0);  // original m/n ~ 14.5
  // Heavy in-degree tail.
  EXPECT_GT(s.max_in_degree, 4 * avg_in);
}

TEST(DatasetRegimesTest, HepPhIsTheLargestAndDense) {
  const GraphStats ph = StatsFor("hepph", 0.02);
  const GraphStats th = StatsFor("hepth", 0.02);
  EXPECT_GT(ph.num_nodes, 2 * th.num_nodes);
  const double ph_deg = static_cast<double>(ph.num_edges) / ph.num_nodes;
  const double th_deg = static_cast<double>(th.num_edges) / th.num_nodes;
  // hepth is stored symmetrised (directed count doubles), so compare with
  // headroom rather than the raw 12.2-vs-2.63 published ratio.
  EXPECT_GT(ph_deg, 1.5 * th_deg);
}

TEST(DatasetRegimesTest, GrowthDatasetsHaveFewIsolatedNodesAtTheEnd) {
  for (const char* name : {"as733", "as-caida"}) {
    const Dataset ds = MakeDataset(name, 0.03, 0);  // full snapshot count
    const GraphStats s = AnalyzeGraph(ds.static_graph);
    // By the final snapshot nearly every node has arrived and attached.
    EXPECT_GT(s.largest_component, s.num_nodes * 8 / 10) << name;
  }
}

TEST(DatasetRegimesTest, WalksCanActuallyMove) {
  // The share of dead-end nodes (no in-neighbours) must be small, otherwise
  // sqrt(c)-walks die immediately and every SimRank is trivially 0 — the
  // degeneracy the randomised edge orientation exists to prevent.
  for (const std::string& name : DatasetNames()) {
    const GraphStats s = StatsFor(name);
    EXPECT_LT(s.dead_end_nodes, s.num_nodes / 4) << name;
  }
}

}  // namespace
}  // namespace crashsim
