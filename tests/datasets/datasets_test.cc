#include "datasets/datasets.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace crashsim {
namespace {

TEST(DatasetSpecsTest, TableThreeStatistics) {
  const auto& specs = PaperDatasetSpecs();
  ASSERT_EQ(specs.size(), 5u);
  // Spot-check the published Table III numbers.
  EXPECT_EQ(specs[0].name, "as733");
  EXPECT_TRUE(specs[0].undirected);
  EXPECT_EQ(specs[0].nodes, 6474);
  EXPECT_EQ(specs[0].edges, 13233);
  EXPECT_EQ(specs[0].snapshots, 733);
  EXPECT_EQ(specs[4].name, "hepph");
  EXPECT_FALSE(specs[4].undirected);
  EXPECT_EQ(specs[4].nodes, 34546);
}

TEST(DatasetNamesTest, FiveCanonicalKeys) {
  const auto names = DatasetNames();
  EXPECT_EQ(names, (std::vector<std::string>{"as733", "as-caida", "wiki-vote",
                                             "hepth", "hepph"}));
}

TEST(MakeDatasetTest, ScaledAs733HasExpectedShape) {
  const Dataset ds = MakeDataset("as733", 0.05, /*snapshots_override=*/20);
  EXPECT_EQ(ds.spec.snapshots, 20);
  EXPECT_EQ(ds.temporal.num_snapshots(), 20);
  // ~5% of 6474.
  EXPECT_NEAR(ds.spec.nodes, 324, 10);
  EXPECT_EQ(ds.temporal.num_nodes(), ds.spec.nodes);
  EXPECT_TRUE(ds.temporal.undirected());
  // Static graph is the final snapshot.
  EXPECT_TRUE(ds.static_graph ==
              ds.temporal.Snapshot(ds.temporal.num_snapshots() - 1));
}

TEST(MakeDatasetTest, DirectedDatasetsAreDirected) {
  for (const char* name : {"as-caida", "wiki-vote", "hepph"}) {
    const Dataset ds = MakeDataset(name, 0.02, 5);
    EXPECT_FALSE(ds.temporal.undirected()) << name;
  }
}

TEST(MakeDatasetTest, DegreeRegimePreservedUnderScaling) {
  // wiki-vote: m/n ~ 14.5 at full size; the scaled stand-in should stay in
  // that ballpark.
  const Dataset ds = MakeDataset("wiki-vote", 0.05, 5);
  const double ratio =
      static_cast<double>(ds.spec.edges) / static_cast<double>(ds.spec.nodes);
  EXPECT_GT(ratio, 7.0);
  EXPECT_LT(ratio, 25.0);
}

TEST(MakeDatasetTest, DeterministicInSeed) {
  const Dataset a = MakeDataset("hepth", 0.03, 6, 99);
  const Dataset b = MakeDataset("hepth", 0.03, 6, 99);
  EXPECT_TRUE(a.static_graph == b.static_graph);
  for (int t = 0; t < 6; ++t) {
    EXPECT_EQ(a.temporal.SnapshotEdges(t), b.temporal.SnapshotEdges(t));
  }
  const Dataset c = MakeDataset("hepth", 0.03, 6, 100);
  EXPECT_FALSE(a.static_graph == c.static_graph);
}

TEST(MakeDatasetTest, SnapshotsDifferAcrossTime) {
  const Dataset ds = MakeDataset("hepth", 0.03, 8);
  int nonempty_deltas = 0;
  for (int t = 1; t < ds.temporal.num_snapshots(); ++t) {
    if (!ds.temporal.Delta(t).Empty()) ++nonempty_deltas;
  }
  EXPECT_GT(nonempty_deltas, 4);
}

TEST(MakeDatasetTest, GrowthDatasetsGainEdgesOverTime) {
  const Dataset ds = MakeDataset("as-caida", 0.02, 12);
  const size_t first = ds.temporal.SnapshotEdges(0).size();
  const size_t last = ds.temporal.SnapshotEdges(11).size();
  EXPECT_GT(last, first);
}

TEST(MakeDatasetTest, MinimumSizeFloor) {
  const Dataset ds = MakeDataset("as733", 0.0001, 3);
  EXPECT_GE(ds.spec.nodes, 60);
}

TEST(MakeDatasetDeathTest, UnknownNameDies) {
  EXPECT_DEATH(MakeDataset("no-such-dataset", 0.1, 3), "unknown dataset");
}

}  // namespace
}  // namespace crashsim
