// Standalone corpus-replay driver: links against a harness's
// LLVMFuzzerTestOneInput and feeds it every file under the directories (or
// the individual files) named on the command line. This is what lets the
// committed corpora run as plain tier-1 ctest entries on any compiler —
// libFuzzer itself needs clang, but regressions replay everywhere.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool ReplayFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "replay: cannot open %s\n", path.c_str());
    return false;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir-or-file>...\n", argv[0]);
    return 2;
  }
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      // Sorted for a deterministic replay order (directory iteration order
      // is filesystem-dependent).
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const auto& f : files) {
        if (!ReplayFile(f)) return 1;
        ++replayed;
      }
    } else {
      if (!ReplayFile(arg)) return 1;
      ++replayed;
    }
  }
  if (replayed == 0) {
    std::fprintf(stderr, "replay: no corpus files found\n");
    return 1;
  }
  std::printf("replay: %d input(s) OK\n", replayed);
  return 0;
}
