// libFuzzer harness for the graph_io edge-list loader: arbitrary bytes fed
// through ReadEdgeList must produce either parsed edges that respect the
// configured limits or a clean Status from the documented taxonomy
// (kInvalidArgument for malformed rows, kResourceExhausted for limit
// breaches) — never a crash, an out-of-range id, or silent acceptance of
// garbage. Both column-strictness modes run on every input.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph_io.h"
#include "util/status.h"

namespace {

void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "graph_io_fuzz: %s\n", what);
    std::abort();
  }
}

void CheckOneMode(const std::string& text, bool allow_extra_columns) {
  crashsim::EdgeListLimits limits;
  limits.max_nodes = 4096;
  limits.max_edges = 4096;
  limits.allow_extra_columns = allow_extra_columns;
  std::istringstream in(text);
  auto edges = crashsim::ReadEdgeList(in, limits);
  if (!edges.ok()) {
    const crashsim::StatusCode code = edges.status().code();
    Require(code == crashsim::StatusCode::kInvalidArgument ||
                code == crashsim::StatusCode::kResourceExhausted,
            "loader errors must be kInvalidArgument or kResourceExhausted");
    return;
  }
  Require(static_cast<int64_t>(edges.value().size()) <= limits.max_edges,
          "edge count must respect max_edges");
  for (const auto& [src, dst] : edges.value()) {
    Require(src >= 0 && dst >= 0, "accepted ids must be non-negative");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);
  CheckOneMode(text, /*allow_extra_columns=*/false);
  CheckOneMode(text, /*allow_extra_columns=*/true);
  return 0;
}
