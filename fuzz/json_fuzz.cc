// libFuzzer harness for the serve/json parser: any byte string must either
// parse or come back as a clean kInvalidArgument — never crash, hang, or
// blow the depth-limited stack. Parsed documents must round-trip: Write()
// output reparses, and a second Write() is byte-identical (the serving
// protocol's determinism contract leans on that).
//
// Built two ways (fuzz/CMakeLists.txt): with -fsanitize=fuzzer under clang
// for the CI fuzz-smoke lane, and against replay_main.cc as a plain
// executable that replays the committed corpus as a tier-1 ctest on any
// compiler.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "serve/json.h"
#include "util/status.h"

namespace {

void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "json_fuzz: %s\n", what);
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) return 0;  // huge inputs only slow the search down
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  crashsim::StatusOr<crashsim::JsonValue> parsed = crashsim::ParseJson(text);
  if (!parsed.ok()) {
    Require(parsed.status().code() == crashsim::StatusCode::kInvalidArgument,
            "malformed input must be kInvalidArgument");
    return 0;
  }
  const std::string first = parsed.value().Write();
  crashsim::StatusOr<crashsim::JsonValue> reparsed = crashsim::ParseJson(first);
  Require(reparsed.ok(), "Write() output must reparse");
  Require(reparsed.value().Write() == first,
          "Write() must be a fixed point after one round-trip");
  return 0;
}
