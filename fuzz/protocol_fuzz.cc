// libFuzzer harness for the serve/protocol frame decoder. The fuzz input is
// treated as raw wire bytes arriving on a socket: fed through a pipe and
// decoded with ReadFrame until the stream is exhausted. Every outcome must
// land in the documented taxonomy (kUnavailable at a clean boundary,
// kDataLoss mid-frame, kResourceExhausted for an oversized length prefix) —
// never a crash, a hang, or a payload past max_bytes. The same input is then
// round-tripped as a payload through WriteFrame -> ReadFrame, which must
// reproduce it byte for byte.

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "serve/protocol.h"
#include "util/status.h"

namespace {

// Unix stream sockets buffer well over this; staying small lets the
// single-threaded write-then-read pattern below never block.
constexpr size_t kMaxInput = 30000;

void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "protocol_fuzz: %s\n", what);
    std::abort();
  }
}

// The codec speaks recv/send (MSG_NOSIGNAL), so the test transport must be
// a real socket — a pipe would fail every call with ENOTSOCK.
struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() {
    Require(socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0,
            "socketpair() failed");
  }
  ~SocketPair() {
    if (fds[0] >= 0) close(fds[0]);
    if (fds[1] >= 0) close(fds[1]);
  }
  void CloseWrite() {
    close(fds[1]);
    fds[1] = -1;
  }
};

void DecodeRawStream(const uint8_t* data, size_t size) {
  SocketPair p;
  Require(write(p.fds[1], data, size) == static_cast<ssize_t>(size),
          "short pipe write");
  p.CloseWrite();
  // A small ceiling so the 4-byte prefix space is mostly "oversized" —
  // exercising the kResourceExhausted arm — while any declared length the
  // decoder does accept stays tiny.
  constexpr uint32_t kMaxBytes = 4096;
  for (;;) {
    crashsim::StatusOr<std::string> frame =
        crashsim::ReadFrame(p.fds[0], kMaxBytes);
    if (frame.ok()) {
      Require(frame.value().size() <= kMaxBytes,
              "accepted payload exceeds max_bytes");
      continue;
    }
    const crashsim::StatusCode code = frame.status().code();
    Require(code == crashsim::StatusCode::kUnavailable ||
                code == crashsim::StatusCode::kDataLoss ||
                code == crashsim::StatusCode::kResourceExhausted,
            "decode errors must be kUnavailable/kDataLoss/"
            "kResourceExhausted");
    break;
  }
}

void RoundTripAsPayload(const uint8_t* data, size_t size) {
  SocketPair p;
  const std::string_view payload(reinterpret_cast<const char*>(data), size);
  Require(crashsim::WriteFrame(p.fds[1], payload).ok(), "WriteFrame failed");
  p.CloseWrite();
  crashsim::StatusOr<std::string> frame = crashsim::ReadFrame(p.fds[0]);
  Require(frame.ok(), "round-trip frame must decode");
  Require(frame.value() == payload, "round-trip payload mismatch");
  frame = crashsim::ReadFrame(p.fds[0]);
  Require(!frame.ok() &&
              frame.status().code() == crashsim::StatusCode::kUnavailable,
          "end of a round-trip stream must be a clean kUnavailable");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > kMaxInput) return 0;
  DecodeRawStream(data, size);
  RoundTripAsPayload(data, size);
  return 0;
}
